//! The temporal database: ground tuples annotated with interval sets.
//!
//! A database `D` in the paper is a finite set of facts `P(v̄)@ρ`; here each
//! `(P, v̄)` maps to the coalesced [`IntervalSet`] of all its annotations,
//! which is the canonical representation of the induced interpretation.

use crate::ast::Fact;
use crate::symbol::Symbol;
use crate::value::{Tuple, Value};
use mtl_temporal::{Interval, IntervalSet, Rational};
use std::collections::HashMap;
use std::fmt;
use std::sync::RwLock;

/// Index key of one argument value, normalized so semantically equal values
/// (`3` and `3.0`) land in the same bucket. Numeric values key on the `f64`
/// bit pattern — exactly the equivalence [`Value::semantic_eq`] uses, so an
/// index probe never misses a tuple a full scan would unify with.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
enum IndexKey {
    Num(u64),
    Sym(Symbol),
    Bool(bool),
}

impl IndexKey {
    fn of(v: &Value) -> IndexKey {
        match v.as_f64() {
            // `-0.0` is normalized at Value construction and `Int` cannot
            // produce it, so the bit pattern is canonical.
            Some(f) => IndexKey::Num(f.to_bits()),
            None => match v {
                Value::Sym(s) => IndexKey::Sym(*s),
                Value::Bool(b) => IndexKey::Bool(*b),
                Value::Int(_) | Value::Num(_) => unreachable!("numeric handled above"),
            },
        }
    }
}

/// Per-argument-position secondary indexes: `value → tuple ids`, built
/// lazily on first probe and maintained incrementally afterwards. Bucket id
/// lists are kept in ascending (insertion) order so a probe visits tuples
/// in the same order a full scan would — determinism is preserved.
#[derive(Default, Debug, Clone)]
struct SecondaryIndexes {
    by_pos: HashMap<usize, HashMap<IndexKey, Vec<u32>>>,
    time: Option<TimeIndex>,
}

/// Pending-tail length at which a [`TimeIndex`] re-sorts; probes scan the
/// tail linearly below this, so read-side calls never need a write lock.
const TIME_INDEX_PENDING_MAX: usize = 64;

/// Sorted-endpoint time index: every finite interval component of every
/// tuple as a `(lo, hi, id)` entry ordered by `lo`. A window probe
/// binary-searches the entries whose component can overlap the window —
/// `lo ∈ [window.lo − max_len, window.hi]` — and filters by `hi`.
///
/// The index is an over-approximation: endpoint closedness is ignored and
/// components superseded by later coalescing are retained. That is sound
/// because the union of all indexed components always covers the tuple's
/// true interval set (every `insert`ed interval and every `merge` delta is
/// indexed), so a probe can return false positives — removed by the
/// caller's exact `intersect_interval` clip — but never false negatives.
#[derive(Clone, Debug)]
struct TimeIndex {
    /// Sorted by `(lo, hi, id)`.
    entries: Vec<(Rational, Rational, u32)>,
    /// Recent insertions not yet merged into `entries`, scanned linearly.
    pending: Vec<(Rational, Rational, u32)>,
    /// Ids of tuples with an unbounded (or overflow-length) component;
    /// always candidates. Sorted, deduplicated.
    unbounded: Vec<u32>,
    /// Upper bound on the length of any indexed component; bounds how far
    /// before a window an overlapping component can start.
    max_len: Rational,
}

impl TimeIndex {
    fn build(entries: &[(Tuple, IntervalSet)]) -> TimeIndex {
        let mut idx = TimeIndex {
            entries: Vec::new(),
            pending: Vec::new(),
            unbounded: Vec::new(),
            max_len: Rational::ZERO,
        };
        for (id, (_, ivs)) in entries.iter().enumerate() {
            for comp in ivs.iter() {
                idx.note(comp, id as u32);
            }
        }
        idx.flush();
        idx
    }

    /// Records one interval component of tuple `id`.
    fn note(&mut self, comp: &Interval, id: u32) {
        let bounded = comp.finite_endpoints().and_then(|(lo, hi)| {
            // Overflow-length components are demoted to `unbounded`.
            hi.checked_sub(lo).map(|len| (lo, hi, len))
        });
        match bounded {
            Some((lo, hi, len)) => {
                if len > self.max_len {
                    self.max_len = len;
                }
                self.pending.push((lo, hi, id));
                if self.pending.len() > TIME_INDEX_PENDING_MAX {
                    self.flush();
                }
            }
            None => {
                if let Err(pos) = self.unbounded.binary_search(&id) {
                    self.unbounded.insert(pos, id);
                }
            }
        }
    }

    /// Merges the pending tail into the sorted entries.
    fn flush(&mut self) {
        if !self.pending.is_empty() {
            self.entries.append(&mut self.pending);
            self.entries.sort_unstable();
        }
    }

    /// Tuple ids whose indexed extent can overlap `window`, in ascending
    /// (= insertion) order, so scan determinism is preserved.
    fn probe(&self, window: &Interval) -> Vec<u32> {
        let wlo = window.lo().finite();
        let whi = window.hi().finite();
        let start = match wlo.and_then(|a| a.checked_sub(self.max_len)) {
            // A component starting before `window.lo − max_len` ends
            // before the window; skip it. On −∞ or overflow, scan from 0.
            Some(cut) => self.entries.partition_point(|&(lo, _, _)| lo < cut),
            None => 0,
        };
        let end = match whi {
            Some(b) => self.entries.partition_point(|&(lo, _, _)| lo <= b),
            None => self.entries.len(),
        };
        let overlaps =
            |lo: Rational, hi: Rational| wlo.is_none_or(|a| hi >= a) && whi.is_none_or(|b| lo <= b);
        let mut ids: Vec<u32> = self.unbounded.clone();
        for &(lo, hi, id) in &self.entries[start..end] {
            if overlaps(lo, hi) {
                ids.push(id);
            }
        }
        for &(lo, hi, id) in &self.pending {
            if overlaps(lo, hi) {
                ids.push(id);
            }
        }
        ids.sort_unstable();
        ids.dedup();
        ids
    }
}

/// All tuples of one predicate with their validity intervals.
///
/// Tuples live in a dense, insertion-ordered arena (`entries`) with a
/// hash lookup (`ids`) for exact-tuple access; value indexes hang off the
/// side under a lock so read-only evaluation threads can build them on
/// first use.
#[derive(Default, Debug)]
pub struct Relation {
    entries: Vec<(Tuple, IntervalSet)>,
    ids: HashMap<Tuple, u32>,
    indexes: RwLock<SecondaryIndexes>,
}

impl Clone for Relation {
    fn clone(&self) -> Relation {
        // Built indexes are carried over: a cloned database (session window
        // advance, threaded stratum snapshot) keeps its warm access paths
        // and patches them incrementally instead of rebuilding on the next
        // probe.
        let indexes = self
            .indexes
            .read()
            .expect("relation index lock poisoned")
            .clone();
        Relation {
            entries: self.entries.clone(),
            ids: self.ids.clone(),
            indexes: RwLock::new(indexes),
        }
    }
}

impl Relation {
    /// The id of `tuple`, allocating a fresh entry (and updating any built
    /// indexes) when unseen.
    fn id_of(&mut self, tuple: Tuple) -> u32 {
        if let Some(&id) = self.ids.get(&tuple) {
            return id;
        }
        let id = u32::try_from(self.entries.len()).expect("relation tuple-id overflow");
        let indexes = self
            .indexes
            .get_mut()
            .expect("relation index lock poisoned");
        for (&pos, buckets) in indexes.by_pos.iter_mut() {
            if let Some(v) = tuple.get(pos) {
                buckets.entry(IndexKey::of(v)).or_default().push(id);
            }
        }
        self.ids.insert(tuple.clone(), id);
        self.entries.push((tuple, IntervalSet::new()));
        id
    }

    /// Inserts an interval for a tuple; returns `true` iff the set grew.
    pub fn insert(&mut self, tuple: Tuple, interval: Interval) -> bool {
        let id = self.id_of(tuple);
        let grew = self.entries[id as usize].1.insert(interval);
        if grew {
            if let Some(time) = self
                .indexes
                .get_mut()
                .expect("relation index lock poisoned")
                .time
                .as_mut()
            {
                time.note(&interval, id);
            }
        }
        grew
    }

    /// Merges an interval set for a tuple; returns the genuinely new part
    /// (empty when nothing grew).
    pub fn merge(&mut self, tuple: Tuple, ivs: &IntervalSet) -> IntervalSet {
        let id = self.id_of(tuple);
        let entry = &mut self.entries[id as usize].1;
        let delta = ivs.difference(entry);
        if !delta.is_empty() {
            entry.union_with(&delta);
            if let Some(time) = self
                .indexes
                .get_mut()
                .expect("relation index lock poisoned")
                .time
                .as_mut()
            {
                for comp in delta.iter() {
                    time.note(comp, id);
                }
            }
        }
        delta
    }

    /// Removes `ivs` from a tuple's validity; returns the part actually
    /// removed (empty when the tuple is absent or disjoint).
    ///
    /// The entry itself is kept even when its interval set empties out:
    /// tuple ids stay dense and stable, so the per-position value indexes
    /// remain exact (a probe returning an emptied tuple yields no intervals
    /// after the caller's clip). The time index is deliberately left
    /// untouched — its contract is over-approximation (coverage ⊇ truth),
    /// and removal only shrinks truth, so stale entries can produce false
    /// positives but never a missed tuple.
    pub fn remove(&mut self, tuple: &[Value], ivs: &IntervalSet) -> IntervalSet {
        let Some(&id) = self.ids.get(tuple) else {
            return IntervalSet::new();
        };
        let entry = &mut self.entries[id as usize].1;
        let removed = entry.intersect(ivs);
        if !removed.is_empty() {
            *entry = entry.difference(ivs);
        }
        removed
    }

    /// The interval set of a tuple (empty-set view for missing tuples).
    pub fn get(&self, tuple: &[Value]) -> Option<&IntervalSet> {
        self.ids.get(tuple).map(|&id| &self.entries[id as usize].1)
    }

    /// Iterates `(tuple, intervals)` in insertion order (deterministic).
    pub fn iter(&self) -> impl Iterator<Item = (&Tuple, &IntervalSet)> {
        self.entries.iter().map(|(t, ivs)| (t, ivs))
    }

    /// The tuple and intervals stored under a tuple id (from
    /// [`Relation::probe`]).
    pub fn entry(&self, id: u32) -> (&Tuple, &IntervalSet) {
        let (t, ivs) = &self.entries[id as usize];
        (t, ivs)
    }

    /// Number of distinct tuples.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` iff the relation has no tuples.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Ensures the position index for `pos` exists, building it from the
    /// current entries when missing.
    fn ensure_index(&self, pos: usize) {
        if self
            .indexes
            .read()
            .expect("relation index lock poisoned")
            .by_pos
            .contains_key(&pos)
        {
            return;
        }
        let mut w = self.indexes.write().expect("relation index lock poisoned");
        // Double-checked: another thread may have built it while we waited.
        if w.by_pos.contains_key(&pos) {
            return;
        }
        let mut buckets: HashMap<IndexKey, Vec<u32>> = HashMap::new();
        for (id, (tuple, _)) in self.entries.iter().enumerate() {
            if let Some(v) = tuple.get(pos) {
                buckets.entry(IndexKey::of(v)).or_default().push(id as u32);
            }
        }
        w.by_pos.insert(pos, buckets);
    }

    /// Index probe: tuple ids whose argument at some ground position
    /// semantically equals the bound value, using the most selective
    /// (smallest-bucket) position among `ground`. Candidate ids come back
    /// in insertion order, i.e. the order a full scan would visit them, so
    /// callers only need to re-verify with full unification.
    ///
    /// Builds missing per-position indexes on first use; they are then
    /// maintained incrementally by [`Relation::insert`] /
    /// [`Relation::merge`].
    pub fn probe(&self, ground: &[(usize, Value)]) -> Vec<u32> {
        for &(pos, _) in ground {
            self.ensure_index(pos);
        }
        let r = self.indexes.read().expect("relation index lock poisoned");
        let mut best: Option<&Vec<u32>> = None;
        for (pos, v) in ground {
            let bucket = r.by_pos[pos].get(&IndexKey::of(v));
            match bucket {
                // A ground position with no bucket means no tuple can match.
                None => return Vec::new(),
                Some(b) => {
                    if best.is_none_or(|cur| b.len() < cur.len()) {
                        best = Some(b);
                    }
                }
            }
        }
        best.cloned().unwrap_or_default()
    }

    /// Ensures the time index exists, building it from the current entries
    /// when missing (double-checked, like [`Relation::ensure_index`]).
    fn ensure_time_index(&self) {
        if self
            .indexes
            .read()
            .expect("relation index lock poisoned")
            .time
            .is_some()
        {
            return;
        }
        let mut w = self.indexes.write().expect("relation index lock poisoned");
        if w.time.is_none() {
            w.time = Some(TimeIndex::build(&self.entries));
        }
    }

    /// Time-index probe: tuple ids whose validity can overlap `window`, in
    /// insertion order. Over-approximate (see [`TimeIndex`]): callers must
    /// still clip each candidate's interval set exactly. Builds the index
    /// on first use; it is then maintained incrementally by
    /// [`Relation::insert`] / [`Relation::merge`] and survives cloning.
    pub fn probe_time(&self, window: &Interval) -> Vec<u32> {
        self.ensure_time_index();
        self.indexes
            .read()
            .expect("relation index lock poisoned")
            .time
            .as_ref()
            .expect("time index built above")
            .probe(window)
    }

    /// Number of built indexes (per-position value indexes + time index).
    pub fn built_index_count(&self) -> usize {
        let r = self.indexes.read().expect("relation index lock poisoned");
        r.by_pos.len() + usize::from(r.time.is_some())
    }

    /// Number of distinct values at argument position `pos`, when the
    /// per-position value index for `pos` has already been built. Strictly
    /// read-only — it never triggers an index build — so the planner can
    /// consult cardinalities without perturbing access-path counters.
    pub fn distinct_count(&self, pos: usize) -> Option<usize> {
        self.indexes
            .read()
            .expect("relation index lock poisoned")
            .by_pos
            .get(&pos)
            .map(|buckets| buckets.len())
    }

    /// Number of indexed interval components (sorted entries plus pending
    /// tail), when the time index has already been built. Read-only, like
    /// [`Relation::distinct_count`].
    pub fn time_entry_count(&self) -> Option<usize> {
        self.indexes
            .read()
            .expect("relation index lock poisoned")
            .time
            .as_ref()
            .map(|t| t.entries.len() + t.pending.len())
    }
}

/// A temporal database: one [`Relation`] per predicate.
#[derive(Clone, Default, Debug)]
pub struct Database {
    rels: HashMap<Symbol, Relation>,
}

impl Database {
    /// Empty database.
    pub fn new() -> Database {
        Database::default()
    }

    /// Inserts a parsed fact. Returns `true` iff the database grew.
    pub fn insert_fact(&mut self, fact: &Fact) -> bool {
        self.insert(
            fact.pred,
            fact.args.clone().into_boxed_slice(),
            fact.interval,
        )
    }

    /// Inserts facts from an iterator.
    pub fn extend_facts<'a, I: IntoIterator<Item = &'a Fact>>(&mut self, facts: I) {
        for f in facts {
            self.insert_fact(f);
        }
    }

    /// Inserts a single `(pred, tuple)@interval`. Returns `true` iff grew.
    pub fn insert(&mut self, pred: Symbol, tuple: Tuple, interval: Interval) -> bool {
        self.rels.entry(pred).or_default().insert(tuple, interval)
    }

    /// Convenience insertion with builder-style values.
    pub fn assert_at(&mut self, pred: &str, args: &[Value], t: i64) -> &mut Self {
        self.insert(
            Symbol::new(pred),
            args.to_vec().into_boxed_slice(),
            Interval::at(t),
        );
        self
    }

    /// Convenience insertion over an interval.
    pub fn assert_over(&mut self, pred: &str, args: &[Value], interval: Interval) -> &mut Self {
        self.insert(
            Symbol::new(pred),
            args.to_vec().into_boxed_slice(),
            interval,
        );
        self
    }

    /// The relation for a predicate, if any tuple exists.
    pub fn relation(&self, pred: Symbol) -> Option<&Relation> {
        self.rels.get(&pred)
    }

    /// Merges `(pred, tuple)@ivs`; returns the genuinely new intervals.
    pub fn merge(&mut self, pred: Symbol, tuple: Tuple, ivs: &IntervalSet) -> IntervalSet {
        self.rels.entry(pred).or_default().merge(tuple, ivs)
    }

    /// Removes `ivs` from `(pred, tuple)`'s validity; returns the part
    /// actually removed. See [`Relation::remove`] for the index-soundness
    /// contract (entries are kept, the time index stays over-approximate).
    pub fn remove(&mut self, pred: Symbol, tuple: &[Value], ivs: &IntervalSet) -> IntervalSet {
        self.rels
            .get_mut(&pred)
            .map(|r| r.remove(tuple, ivs))
            .unwrap_or_default()
    }

    /// The interval set of a specific ground atom.
    pub fn intervals(&self, pred: Symbol, args: &[Value]) -> IntervalSet {
        self.rels
            .get(&pred)
            .and_then(|r| r.get(args))
            .cloned()
            .unwrap_or_default()
    }

    /// Does `pred(args)` hold at time `t`?
    pub fn holds_at(&self, pred: &str, args: &[Value], t: i64) -> bool {
        self.holds_at_rational(Symbol::new(pred), args, Rational::integer(t))
    }

    /// Does `pred(args)` hold at rational time `t`?
    pub fn holds_at_rational(&self, pred: Symbol, args: &[Value], t: Rational) -> bool {
        self.rels
            .get(&pred)
            .and_then(|r| r.get(args))
            .is_some_and(|ivs| ivs.contains(t))
    }

    /// All predicates present.
    pub fn predicates(&self) -> impl Iterator<Item = Symbol> + '_ {
        self.rels.keys().copied()
    }

    /// Iterates every `(pred, tuple, intervals)`.
    pub fn iter(&self) -> impl Iterator<Item = (Symbol, &Tuple, &IntervalSet)> {
        self.rels
            .iter()
            .flat_map(|(p, r)| r.iter().map(move |(t, ivs)| (*p, t, ivs)))
    }

    /// Renders the database as parseable fact text, sorted for determinism.
    pub fn to_facts_text(&self) -> String {
        let mut lines: Vec<String> = self
            .iter()
            .flat_map(|(p, tuple, ivs)| {
                ivs.iter()
                    .map(move |iv| {
                        let args = tuple
                            .iter()
                            .map(|v| v.to_string())
                            .collect::<Vec<_>>()
                            .join(", ");
                        format!("{p}({args})@{iv}.")
                    })
                    .collect::<Vec<_>>()
            })
            .collect();
        lines.sort();
        lines.join("\n")
    }

    /// Total number of distinct tuples across relations.
    pub fn tuple_count(&self) -> usize {
        self.rels.values().map(Relation::len).sum()
    }

    /// Pattern query: all tuples of `pattern.pred` unifying with the
    /// pattern's arguments (variables bind, repeated variables must agree,
    /// constants filter — numeric constants match semantically), together
    /// with their validity. Optionally restricted to a time window.
    ///
    /// ```
    /// use chronolog_core::{parse_facts, Atom, Database, Term, Value};
    /// let mut db = Database::new();
    /// db.extend_facts(&parse_facts("p(a, 1)@3.\np(a, 2)@5.\np(b, 1)@4.").unwrap());
    /// let pattern = Atom::new("p", vec![Term::Val(Value::sym("a")), Term::var("N")]);
    /// let hits = db.query(&pattern, None);
    /// assert_eq!(hits.len(), 2);
    /// ```
    pub fn query(
        &self,
        pattern: &crate::ast::Atom,
        window: Option<&Interval>,
    ) -> Vec<(Tuple, IntervalSet)> {
        let Some(rel) = self.rels.get(&pattern.pred) else {
            return Vec::new();
        };
        let mut out = Vec::new();
        'tuples: for (tuple, ivs) in rel.iter() {
            if tuple.len() != pattern.args.len() {
                continue;
            }
            let mut bound: HashMap<Symbol, Value> = HashMap::new();
            for (term, v) in pattern.args.iter().zip(tuple.iter()) {
                match term {
                    crate::ast::Term::Val(c) => {
                        if !c.semantic_eq(v) {
                            continue 'tuples;
                        }
                    }
                    crate::ast::Term::Var(x) => match bound.get(x) {
                        Some(prev) if !prev.semantic_eq(v) => continue 'tuples,
                        _ => {
                            bound.insert(*x, *v);
                        }
                    },
                }
            }
            let clipped = match window {
                Some(w) => ivs.intersect_interval(w),
                None => ivs.clone(),
            };
            if !clipped.is_empty() {
                out.push((tuple.clone(), clipped));
            }
        }
        out
    }

    /// Parses fact text (as produced by [`Database::to_facts_text`]) back
    /// into a database — the snapshot counterpart of the renderer.
    pub fn from_facts_text(text: &str) -> crate::error::Result<Database> {
        let facts = crate::parser::parse_facts(text)?;
        let mut db = Database::new();
        db.extend_facts(&facts);
        Ok(db)
    }

    /// Total number of interval components (a proxy for memory footprint).
    pub fn component_count(&self) -> usize {
        self.iter().map(|(_, _, ivs)| ivs.components().len()).sum()
    }

    /// Total number of built secondary indexes across relations. A clone
    /// carries these over, so the count right after cloning measures the
    /// index rebuilds the clone avoided.
    pub fn built_index_count(&self) -> usize {
        self.rels.values().map(Relation::built_index_count).sum()
    }
}

impl fmt::Display for Database {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_facts_text())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_query() {
        let mut db = Database::new();
        db.assert_at("price", &[Value::num(1300.0)], 10);
        assert!(db.holds_at("price", &[Value::num(1300.0)], 10));
        assert!(!db.holds_at("price", &[Value::num(1300.0)], 11));
        assert!(!db.holds_at("price", &[Value::num(9.0)], 10));
    }

    #[test]
    fn repeated_insert_reports_growth_correctly() {
        let mut db = Database::new();
        let pred = Symbol::new("p");
        let tup: Tuple = vec![Value::Int(1)].into_boxed_slice();
        assert!(db.insert(pred, tup.clone(), Interval::closed_int(0, 5)));
        assert!(!db.insert(pred, tup.clone(), Interval::closed_int(2, 4)));
        assert!(db.insert(pred, tup, Interval::closed_int(4, 8)));
    }

    #[test]
    fn merge_returns_only_new_part() {
        let mut db = Database::new();
        let pred = Symbol::new("p");
        let tup: Tuple = vec![Value::Int(1)].into_boxed_slice();
        db.insert(pred, tup.clone(), Interval::closed_int(0, 5));
        let delta = db.merge(
            pred,
            tup,
            &IntervalSet::from_interval(Interval::closed_int(3, 8)),
        );
        assert_eq!(
            delta.components(),
            &[Interval::new(
                Rational::integer(5).into(),
                false,
                Rational::integer(8).into(),
                true
            )
            .unwrap()]
        );
    }

    #[test]
    fn facts_text_is_sorted_and_parseable() {
        let mut db = Database::new();
        db.assert_at("b", &[Value::Int(2)], 3);
        db.assert_at("a", &[Value::sym("x")], 1);
        let text = db.to_facts_text();
        assert!(text.starts_with("a(x)@[1]."));
        let reparsed = crate::parser::parse_facts(&text).unwrap();
        assert_eq!(reparsed.len(), 2);
    }

    #[test]
    fn query_patterns() {
        let mut db = Database::new();
        db.extend_facts(
            &crate::parser::parse_facts("p(a, 1)@3.\np(a, 2)@5.\np(b, 1)@4.\nq(a)@1.").unwrap(),
        );
        use crate::ast::{Atom, Term};
        // All p-tuples.
        let all = db.query(&Atom::new("p", vec![Term::var("X"), Term::var("Y")]), None);
        assert_eq!(all.len(), 3);
        // Constant filter.
        let a_only = db.query(
            &Atom::new("p", vec![Term::Val(Value::sym("a")), Term::var("Y")]),
            None,
        );
        assert_eq!(a_only.len(), 2);
        // Repeated variable: p(X, X) matches nothing here.
        let diag = db.query(&Atom::new("p", vec![Term::var("X"), Term::var("X")]), None);
        assert!(diag.is_empty());
        // Window restriction.
        let windowed = db.query(
            &Atom::new("p", vec![Term::var("X"), Term::var("Y")]),
            Some(&Interval::closed_int(4, 5)),
        );
        assert_eq!(windowed.len(), 2);
        // Unknown predicate.
        assert!(db.query(&Atom::new("zzz", vec![]), None).is_empty());
    }

    #[test]
    fn snapshot_roundtrip() {
        let mut db = Database::new();
        db.extend_facts(
            &crate::parser::parse_facts(
                "margin(acc1, 97.5)@[3, 9].\nprice(1330.0)@4.\nflag(true).",
            )
            .unwrap(),
        );
        let text = db.to_facts_text();
        let back = Database::from_facts_text(&text).unwrap();
        assert_eq!(back.to_facts_text(), text);
    }

    #[test]
    fn probe_finds_semantic_matches_in_scan_order() {
        let mut db = Database::new();
        db.extend_facts(
            &crate::parser::parse_facts(
                "p(a, 1)@0.\np(b, 2)@1.\np(a, 3.0)@2.\np(c, 1.0)@3.\np(a, 2)@4.",
            )
            .unwrap(),
        );
        let rel = db.relation(Symbol::new("p")).unwrap();
        // Probe on position 0 = a.
        let ids = rel.probe(&[(0, Value::sym("a"))]);
        let tuples: Vec<&Tuple> = ids.iter().map(|&id| rel.entry(id).0).collect();
        assert_eq!(tuples.len(), 3);
        // Insertion (scan) order preserved.
        assert_eq!(tuples[0][1], Value::Int(1));
        assert_eq!(tuples[1][1], Value::num(3.0));
        assert_eq!(tuples[2][1], Value::Int(2));
        // Numeric buckets are semantic: Int 1 and Num 1.0 share one.
        let ids = rel.probe(&[(1, Value::num(1.0))]);
        assert_eq!(ids.len(), 2);
        let ids = rel.probe(&[(1, Value::Int(3))]);
        assert_eq!(ids.len(), 1);
        // Most selective position wins: (a, 3.0) → bucket of size 1.
        let ids = rel.probe(&[(0, Value::sym("a")), (1, Value::Int(3))]);
        assert_eq!(ids.len(), 1);
        // A ground value with no bucket short-circuits to no candidates.
        assert!(rel.probe(&[(0, Value::sym("zzz"))]).is_empty());
    }

    #[test]
    fn probe_indexes_stay_fresh_under_inserts_and_merges() {
        let mut db = Database::new();
        let pred = Symbol::new("p");
        db.assert_at("p", &[Value::sym("a"), Value::Int(1)], 0);
        // Build the index...
        assert_eq!(
            db.relation(pred)
                .unwrap()
                .probe(&[(0, Value::sym("a"))])
                .len(),
            1
        );
        // ...then grow the relation through both mutation paths.
        db.assert_at("p", &[Value::sym("a"), Value::Int(2)], 1);
        db.merge(
            pred,
            vec![Value::sym("a"), Value::num(2.0)].into_boxed_slice(),
            &IntervalSet::from_interval(Interval::at(2)),
        );
        let rel = db.relation(pred).unwrap();
        assert_eq!(rel.probe(&[(0, Value::sym("a"))]).len(), 3);
        // Int 2 and Num 2.0 are distinct tuples but share a value bucket.
        assert_eq!(rel.probe(&[(1, Value::Int(2))]).len(), 2);
        // Cloning keeps both built position indexes warm...
        let mut cloned = rel.clone();
        assert_eq!(cloned.built_index_count(), 2);
        assert_eq!(cloned.probe(&[(0, Value::sym("a"))]).len(), 3);
        // ...and the carried-over index stays fresh under further growth.
        cloned.insert(
            vec![Value::sym("a"), Value::Int(9)].into_boxed_slice(),
            Interval::at(5),
        );
        assert_eq!(cloned.probe(&[(0, Value::sym("a"))]).len(), 4);
    }

    #[test]
    fn time_probe_overlaps_only_window() {
        let mut db = Database::new();
        db.assert_over("p", &[Value::Int(0)], Interval::closed_int(0, 4));
        db.assert_over("p", &[Value::Int(1)], Interval::closed_int(10, 12));
        db.assert_over("p", &[Value::Int(2)], Interval::closed_int(20, 24));
        db.assert_over(
            "p",
            &[Value::Int(3)],
            Interval::from_instant(Rational::integer(100)),
        );
        let rel = db.relation(Symbol::new("p")).unwrap();
        // Unbounded tuple 3 is always a candidate; exact clipping is the
        // caller's job.
        assert_eq!(rel.probe_time(&Interval::closed_int(11, 21)), vec![1, 2, 3]);
        assert_eq!(rel.probe_time(&Interval::closed_int(5, 9)), vec![3]);
        assert_eq!(
            rel.probe_time(&Interval::closed_int(0, 100)),
            vec![0, 1, 2, 3]
        );
    }

    #[test]
    fn time_index_stays_fresh_under_growth_and_clone() {
        let mut db = Database::new();
        let pred = Symbol::new("p");
        db.assert_over("p", &[Value::Int(0)], Interval::closed_int(0, 2));
        // Build the index, then grow through both mutation paths.
        assert_eq!(
            db.relation(pred)
                .unwrap()
                .probe_time(&Interval::closed_int(0, 100))
                .len(),
            1
        );
        db.assert_over("p", &[Value::Int(0)], Interval::closed_int(50, 52));
        db.merge(
            pred,
            vec![Value::Int(1)].into_boxed_slice(),
            &IntervalSet::from_interval(Interval::closed_int(60, 61)),
        );
        let rel = db.relation(pred).unwrap();
        assert_eq!(rel.probe_time(&Interval::closed_int(49, 70)), vec![0, 1]);
        assert_eq!(rel.probe_time(&Interval::closed_int(0, 3)), vec![0]);
        assert!(rel.probe_time(&Interval::closed_int(10, 20)).is_empty());
        // The clone carries the index and keeps patching it.
        let mut cloned = rel.clone();
        assert_eq!(cloned.built_index_count(), 1);
        cloned.insert(
            vec![Value::Int(2)].into_boxed_slice(),
            Interval::closed_int(15, 16),
        );
        assert_eq!(cloned.probe_time(&Interval::closed_int(10, 20)), vec![2]);
    }

    #[test]
    fn time_probe_never_misses_after_coalescing() {
        // Coalescing leaves stale sub-entries behind; they may only add
        // false positives, never hide a tuple.
        let mut db = Database::new();
        let pred = Symbol::new("p");
        db.assert_over("p", &[Value::Int(0)], Interval::closed_int(0, 1));
        db.relation(pred).unwrap().probe_time(&Interval::at(0)); // build
        db.assert_over("p", &[Value::Int(0)], Interval::closed_int(3, 9));
        db.assert_over("p", &[Value::Int(0)], Interval::closed_int(1, 3)); // glue
        let rel = db.relation(pred).unwrap();
        for t in 0..=9 {
            assert_eq!(rel.probe_time(&Interval::at(t)), vec![0], "at t={t}");
        }
    }

    #[test]
    fn remove_clips_exactly_and_keeps_entries() {
        let mut db = Database::new();
        let pred = Symbol::new("p");
        let tup: Tuple = vec![Value::Int(1)].into_boxed_slice();
        db.insert(pred, tup.clone(), Interval::closed_int(0, 10));
        // Removing the middle leaves two components.
        let removed = db.remove(
            pred,
            &tup,
            &IntervalSet::from_interval(Interval::closed_int(4, 6)),
        );
        assert_eq!(removed.components(), &[Interval::closed_int(4, 6)]);
        assert!(db.holds_at("p", &[Value::Int(1)], 3));
        assert!(!db.holds_at("p", &[Value::Int(1)], 5));
        assert!(db.holds_at("p", &[Value::Int(1)], 7));
        // Disjoint removal is a no-op; unknown tuples and predicates too.
        assert!(db
            .remove(
                pred,
                &tup,
                &IntervalSet::from_interval(Interval::closed_int(40, 60)),
            )
            .is_empty());
        assert!(db
            .remove(
                pred,
                &[Value::Int(9)],
                &IntervalSet::from_interval(Interval::ALL),
            )
            .is_empty());
        assert!(db
            .remove(
                Symbol::new("zzz"),
                &tup,
                &IntervalSet::from_interval(Interval::ALL),
            )
            .is_empty());
        // Emptying the set keeps the entry (stable ids) but drops it from
        // the rendered facts and the component count.
        db.remove(pred, &tup, &IntervalSet::from_interval(Interval::ALL));
        assert_eq!(db.tuple_count(), 1);
        assert_eq!(db.component_count(), 0);
        assert_eq!(db.to_facts_text(), "");
        // The tuple can come back through the ordinary merge path.
        let added = db.merge(
            pred,
            tup,
            &IntervalSet::from_interval(Interval::closed_int(1, 2)),
        );
        assert!(!added.is_empty());
        assert!(db.holds_at("p", &[Value::Int(1)], 2));
    }

    #[test]
    fn remove_keeps_value_and_time_probes_sound() {
        let mut db = Database::new();
        let pred = Symbol::new("p");
        db.assert_over("p", &[Value::sym("a")], Interval::closed_int(0, 4));
        db.assert_over("p", &[Value::sym("b")], Interval::closed_int(10, 14));
        // Build both index kinds, then remove tuple `a` entirely.
        assert_eq!(
            db.relation(pred).unwrap().probe(&[(0, Value::sym("a"))]),
            vec![0]
        );
        assert_eq!(
            db.relation(pred)
                .unwrap()
                .probe_time(&Interval::closed_int(0, 4)),
            vec![0]
        );
        db.remove(
            pred,
            &[Value::sym("a")],
            &IntervalSet::from_interval(Interval::ALL),
        );
        let rel = db.relation(pred).unwrap();
        // Probes may still surface the emptied tuple (over-approximation)
        // but its interval set is empty, so the exact clip drops it.
        for &id in &rel.probe(&[(0, Value::sym("a"))]) {
            assert!(rel
                .entry(id)
                .1
                .intersect_interval(&Interval::closed_int(0, 4))
                .is_empty());
        }
        assert_eq!(rel.probe(&[(0, Value::sym("b"))]), vec![1]);
        assert!(rel
            .probe_time(&Interval::closed_int(10, 14))
            .contains(&1u32));
    }

    #[test]
    fn counts() {
        let mut db = Database::new();
        db.assert_at("p", &[Value::Int(1)], 0);
        db.assert_at("p", &[Value::Int(1)], 2); // second component
        db.assert_at("p", &[Value::Int(2)], 0);
        assert_eq!(db.tuple_count(), 2);
        assert_eq!(db.component_count(), 3);
    }
}
