//! Property-based cross-validation of the whole stack on random market
//! scenarios: the declarative contract must equal the procedural reference
//! bit-for-bit under identical arithmetic, for *any* valid trader behavior.
//!
//! Randomness comes from the deterministic in-repo `SmallRng`, one seed per
//! case, so failures reproduce from the printed case number.

use chronolog_ledger::{from_json, to_json, Ledger, SubgraphIndex};
use chronolog_market::{generate, ScenarioConfig};
use chronolog_obs::SmallRng;
use chronolog_perp::harness::run_datalog;
use chronolog_perp::program::TimelineMode;
use chronolog_perp::{MarketParams, ReferenceEngine};

const CASES: u64 = 24;

fn gen_scenario(rng: &mut SmallRng) -> ScenarioConfig {
    let seed = rng.next_u64();
    let events = rng.gen_range_usize(4, 26);
    let skew = rng.gen_range_f64(-5_000.0, 5_000.0);
    let price = rng.gen_range_f64(900.0, 2_200.0);
    let max_trades = (events - 1) / 2;
    let trades = rng.gen_range_usize(0, max_trades + 1);
    ScenarioConfig::new("prop", seed, 1_000_000, events, trades, skew, price)
}

fn for_each_case(test: &str, f: impl Fn(&mut SmallRng)) {
    for case in 0..CASES {
        let tag = test.bytes().fold(0u64, |h, b| {
            h.wrapping_mul(0x100000001b3).wrapping_add(b as u64)
        });
        let mut rng = SmallRng::seed_from_u64(tag ^ case.wrapping_mul(0x9E3779B9));
        f(&mut rng);
    }
}

/// The headline theorem of the reproduction: on any valid trace, the
/// DatalogMTL materialization and the imperative engine produce the
/// same FRS and the same settlements, to the last bit.
#[test]
fn declarative_equals_procedural() {
    for_each_case("declarative", |rng| {
        let config = gen_scenario(rng);
        let params = MarketParams::default();
        let trace = generate(&config);
        let datalog = run_datalog(&trace, &params, TimelineMode::EventEpochs).unwrap();
        let reference = ReferenceEngine::<f64>::run_trace(params, &trace);
        assert_eq!(&datalog.run.frs, &reference.frs, "config {config:?}");
        assert_eq!(&datalog.run.trades, &reference.trades, "config {config:?}");
        assert_eq!(
            datalog.run.final_skew, reference.final_skew,
            "config {config:?}"
        );
    });
}

/// Ledger persistence is lossless and tamper-evident for any trace.
#[test]
fn ledger_roundtrip_is_lossless() {
    for_each_case("roundtrip", |rng| {
        let config = gen_scenario(rng);
        let trace = generate(&config);
        let ledger = Ledger::from_trace(&trace).unwrap();
        let back = from_json(&to_json(&ledger).unwrap()).unwrap();
        assert_eq!(&back, &ledger, "config {config:?}");
        assert_eq!(back.to_trace(), trace, "config {config:?}");
    });
}

/// Subgraph index invariants: one settlement per closePos, and the
/// final skew equals initial skew plus all net order flow.
#[test]
fn subgraph_invariants() {
    for_each_case("subgraph", |rng| {
        let config = gen_scenario(rng);
        let trace = generate(&config);
        let ledger = Ledger::from_trace(&trace).unwrap();
        let index = SubgraphIndex::build(&ledger, MarketParams::default());
        assert_eq!(
            index.trades().len(),
            trace.trade_count(),
            "config {config:?}"
        );
        // Every account's trades are a partition of all trades.
        let per_account: usize = trace
            .accounts()
            .iter()
            .map(|&a| index.trades_of(a).len())
            .sum();
        assert_eq!(per_account, index.trades().len(), "config {config:?}");
        // All positions that opened were closed or still net out in skew:
        // final skew minus initial equals the sum of surviving positions.
        let open_sizes: f64 = {
            let mut engine = ReferenceEngine::<f64>::new(
                MarketParams::default(),
                trace.initial_skew,
                trace.start_time,
            );
            for e in &trace.events {
                engine.apply(e);
            }
            trace
                .accounts()
                .iter()
                .filter_map(|&a| engine.position(a))
                .map(|(s, _)| s)
                .sum()
        };
        assert!(
            (index.final_skew() - trace.initial_skew - open_sizes).abs() < 1e-6,
            "skew accounting: {} vs {} + {} (config {config:?})",
            index.final_skew(),
            trace.initial_skew,
            open_sizes
        );
    });
}

/// Fees are always non-negative and monotone in trade size.
#[test]
fn settlement_sanity() {
    for_each_case("settlement", |rng| {
        let config = gen_scenario(rng);
        let trace = generate(&config);
        let reference = ReferenceEngine::<f64>::run_trace(MarketParams::default(), &trace);
        for t in &reference.trades {
            assert!(t.fee >= 0.0, "fee {} negative (config {config:?})", t.fee);
            assert!(
                t.fee.is_finite() && t.pnl.is_finite() && t.funding.is_finite(),
                "non-finite settlement (config {config:?})"
            );
        }
    });
}

/// The §3.1 execution model, live: stream a market window through a
/// [`chronolog_core::Session`] one event at a time (the "memory-resident"
/// smart contract) and compare with the one-shot batch materialization.
#[test]
fn live_session_equals_batch_on_streamed_markets() {
    use chronolog_core::{Database, Fact, Reasoner, ReasonerConfig, Value};
    use chronolog_perp::encode::encode_trace;
    use chronolog_perp::program::{build_program, TimelineMode};
    use chronolog_perp::Method;

    let params = MarketParams::default();
    for seed in [1u64, 2, 3] {
        let config = ScenarioConfig::new("live", seed, 0, 14, 4, 75.0, 1420.0);
        let trace = generate(&config);
        let program = build_program(&params, TimelineMode::EventEpochs).unwrap();

        // Batch run.
        let encoded = encode_trace(&trace, TimelineMode::EventEpochs);
        let batch = Reasoner::new(
            program.clone(),
            ReasonerConfig::default().with_horizon(encoded.horizon.0, encoded.horizon.1),
        )
        .unwrap()
        .materialize(&encoded.database)
        .unwrap()
        .database;

        // Streamed session: genesis facts at epoch 0, then one advance per
        // event epoch.
        let mut genesis = Database::new();
        genesis.assert_at("start", &[], 0);
        genesis.assert_at("startSkew", &[Value::num(trace.initial_skew)], 0);
        genesis.assert_at("startFrs", &[Value::num(0.0)], 0);
        genesis.assert_at("ts", &[Value::Int(trace.start_time)], 0);
        let mut session = Reasoner::new(program, ReasonerConfig::default())
            .unwrap()
            .into_session(&genesis, 0)
            .unwrap();
        for (i, event) in trace.events.iter().enumerate() {
            let epoch = i as i64 + 1;
            let acc = Value::sym(&event.account.to_string());
            let fact = match event.method {
                Method::TransferMargin { amount } => {
                    Fact::at("tranM", vec![acc, Value::num(amount)], epoch)
                }
                Method::Withdraw => Fact::at("withdraw", vec![acc], epoch),
                Method::ModifyPosition { size } => {
                    Fact::at("modPos", vec![acc, Value::num(size)], epoch)
                }
                Method::ClosePosition => Fact::at("closePos", vec![acc], epoch),
            };
            session.submit(fact).unwrap();
            session
                .submit(Fact::at("price", vec![Value::num(event.price)], epoch))
                .unwrap();
            session
                .submit(Fact::at("ts", vec![Value::Int(event.time)], epoch))
                .unwrap();
            session.advance_to(epoch).unwrap();
        }
        assert_eq!(
            session.database().to_facts_text(),
            batch.to_facts_text(),
            "seed {seed}: live session diverged from batch materialization"
        );
    }
}
