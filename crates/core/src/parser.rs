//! Recursive-descent parser for the chronolog concrete syntax.
//!
//! ```text
//! item        := rule | fact
//! rule        := head ":-" body "."
//! fact        := atom ("@" annotation)? "."
//! head        := (("boxminus"|"boxplus") rho?)* head_atom
//! head_atom   := ident "(" head_terms? ")"
//! head_terms  := head_term ("," head_term)*
//! head_term   := aggfn "(" term ")" | term
//! body        := literal ("," literal)*
//! literal     := "not" matom | matom | expr cmp expr
//! matom       := unop matom | bin | "top" | "bottom" | atom
//! unop        := ("boxminus"|"diamondminus"|"boxplus"|"diamondplus") rho?
//! bin         := ("since"|"until") rho? "(" matom "," matom ")"
//! atom        := ident "(" terms? ")" ("@" var)?
//! rho         := interval with non-negative bounds; omitted = [1,1]
//! annotation  := number | interval
//! ```

use crate::ast::*;
use crate::error::{Error, Result};
use crate::lexer::{tokenize, Token, TokenKind};
use crate::symbol::Symbol;
use crate::value::Value;
use mtl_temporal::{Interval, MetricInterval, Rational, TimeBound};

const UNARY_OPS: [&str; 4] = ["boxminus", "diamondminus", "boxplus", "diamondplus"];
const EXPR_FUNCS: [&str; 3] = ["abs", "min", "max"];
const AGG_FUNCS: [&str; 5] = ["sum", "count", "min", "max", "avg"];

/// Parses a full source text into a program and its embedded facts.
pub fn parse_source(src: &str) -> Result<(Program, Vec<Fact>)> {
    Parser::new(src)?.source()
}

/// Parses a source text expected to contain only rules.
pub fn parse_program(src: &str) -> Result<Program> {
    let (p, facts) = parse_source(src)?;
    if let Some(f) = facts.first() {
        return Err(Error::Eval(format!(
            "unexpected fact in program source: {f}"
        )));
    }
    Ok(p)
}

/// Parses a single rule.
pub fn parse_rule(src: &str) -> Result<Rule> {
    let p = parse_program(src)?;
    match p.rules.len() {
        1 => Ok(p.rules.into_iter().next().expect("checked length")),
        n => Err(Error::Eval(format!("expected exactly one rule, found {n}"))),
    }
}

/// Parses a source text expected to contain only facts.
pub fn parse_facts(src: &str) -> Result<Vec<Fact>> {
    let (p, facts) = parse_source(src)?;
    if let Some(r) = p.rules.first() {
        return Err(Error::Eval(format!("unexpected rule in fact source: {r}")));
    }
    Ok(facts)
}

struct Parser {
    toks: Vec<Token>,
    pos: usize,
    anon: usize,
}

impl Parser {
    fn new(src: &str) -> Result<Parser> {
        Ok(Parser {
            toks: tokenize(src)?,
            pos: 0,
            anon: 0,
        })
    }

    fn peek(&self) -> &TokenKind {
        &self.toks[self.pos].kind
    }

    fn peek_at(&self, off: usize) -> &TokenKind {
        &self.toks[(self.pos + off).min(self.toks.len() - 1)].kind
    }

    fn here(&self) -> (usize, usize) {
        let t = &self.toks[self.pos];
        (t.line, t.col)
    }

    fn bump(&mut self) -> TokenKind {
        let k = self.toks[self.pos].kind.clone();
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        k
    }

    fn err(&self, msg: impl Into<String>) -> Error {
        let (l, c) = self.here();
        Error::parse(l, c, msg)
    }

    fn expect(&mut self, kind: TokenKind, what: &str) -> Result<()> {
        if *self.peek() == kind {
            self.bump();
            Ok(())
        } else {
            Err(self.err(format!("expected {what}, found {:?}", self.peek())))
        }
    }

    fn eat_lower(&mut self, word: &str) -> bool {
        if let TokenKind::LowerIdent(s) = self.peek() {
            if s == word {
                self.bump();
                return true;
            }
        }
        false
    }

    fn peek_lower(&self) -> Option<&str> {
        match self.peek() {
            TokenKind::LowerIdent(s) => Some(s.as_str()),
            _ => None,
        }
    }

    // ------------------------------------------------------------------

    fn source(&mut self) -> Result<(Program, Vec<Fact>)> {
        let mut program = Program::new();
        let mut facts = Vec::new();
        while *self.peek() != TokenKind::Eof {
            self.item(&mut program, &mut facts)?;
        }
        Ok((program, facts))
    }

    fn item(&mut self, program: &mut Program, facts: &mut Vec<Fact>) -> Result<()> {
        // A head may start with box operators; a fact never does.
        let mut ops = Vec::new();
        loop {
            match self.peek_lower() {
                Some("boxminus") => {
                    self.bump();
                    let rho = self.rho_or_default()?;
                    ops.push(HeadOp::BoxMinus(rho));
                }
                Some("boxplus") => {
                    self.bump();
                    let rho = self.rho_or_default()?;
                    ops.push(HeadOp::BoxPlus(rho));
                }
                _ => break,
            }
        }
        let (atom, aggregate) = self.head_atom()?;
        match self.peek() {
            TokenKind::Arrow => {
                self.bump();
                let body = self.body()?;
                self.expect(TokenKind::Dot, "'.'")?;
                program.push(Rule {
                    head: Head {
                        atom,
                        ops,
                        aggregate,
                    },
                    body,
                    label: None,
                });
                Ok(())
            }
            _ => {
                if !ops.is_empty() {
                    return Err(self.err("facts cannot carry head operators"));
                }
                if aggregate.is_some() {
                    return Err(self.err("facts cannot carry aggregates"));
                }
                if atom.time_var.is_some() {
                    return Err(self.err("facts use '@interval', not '@Var'"));
                }
                let interval = if *self.peek() == TokenKind::At {
                    self.bump();
                    self.annotation()?
                } else {
                    Interval::ALL
                };
                self.expect(TokenKind::Dot, "'.'")?;
                let args = atom
                    .args
                    .iter()
                    .map(|t| match t {
                        Term::Val(v) => Ok(*v),
                        Term::Var(v) => Err(self.err(format!("fact argument {v} is not ground"))),
                    })
                    .collect::<Result<Vec<_>>>()?;
                facts.push(Fact {
                    pred: atom.pred,
                    args,
                    interval,
                });
                Ok(())
            }
        }
    }

    /// Head atom, allowing one `agg(Var)` argument.
    fn head_atom(&mut self) -> Result<(Atom, Option<(AggFn, usize)>)> {
        let name = match self.bump() {
            TokenKind::LowerIdent(s) => s,
            other => return Err(self.err(format!("expected predicate name, found {other:?}"))),
        };
        self.expect(TokenKind::LParen, "'('")?;
        let mut args = Vec::new();
        let mut aggregate = None;
        if *self.peek() != TokenKind::RParen {
            loop {
                // agg function?
                let is_agg = matches!(self.peek(), TokenKind::LowerIdent(s)
                    if AGG_FUNCS.contains(&s.as_str()))
                    && *self.peek_at(1) == TokenKind::LParen;
                if is_agg {
                    let fun = match self.bump() {
                        TokenKind::LowerIdent(s) => match s.as_str() {
                            "sum" => AggFn::Sum,
                            "count" => AggFn::Count,
                            "min" => AggFn::Min,
                            "max" => AggFn::Max,
                            "avg" => AggFn::Avg,
                            _ => unreachable!("checked above"),
                        },
                        _ => unreachable!("checked above"),
                    };
                    self.expect(TokenKind::LParen, "'('")?;
                    let t = self.term()?;
                    self.expect(TokenKind::RParen, "')'")?;
                    if aggregate.is_some() {
                        return Err(self.err("at most one aggregate per head"));
                    }
                    aggregate = Some((fun, args.len()));
                    args.push(t);
                } else {
                    args.push(self.term()?);
                }
                if *self.peek() == TokenKind::Comma {
                    self.bump();
                } else {
                    break;
                }
            }
        }
        self.expect(TokenKind::RParen, "')'")?;
        Ok((Atom::new(&name, args), aggregate))
    }

    fn body(&mut self) -> Result<Vec<Literal>> {
        let mut lits = vec![self.literal()?];
        while *self.peek() == TokenKind::Comma {
            self.bump();
            lits.push(self.literal()?);
        }
        Ok(lits)
    }

    fn literal(&mut self) -> Result<Literal> {
        if self.eat_lower("not") {
            return Ok(Literal::Neg(self.metric_atom()?));
        }
        if self.starts_metric_atom() {
            return Ok(Literal::Pos(self.metric_atom()?));
        }
        // constraint
        let lhs = self.expr()?;
        let op = match self.bump() {
            TokenKind::Eq => CmpOp::Eq,
            TokenKind::Ne => CmpOp::Ne,
            TokenKind::Lt => CmpOp::Lt,
            TokenKind::Le => CmpOp::Le,
            TokenKind::Gt => CmpOp::Gt,
            TokenKind::Ge => CmpOp::Ge,
            other => return Err(self.err(format!("expected comparison operator, found {other:?}"))),
        };
        let rhs = self.expr()?;
        Ok(Literal::Constraint(lhs, op, rhs))
    }

    /// Does the next token sequence open a metric atom (as opposed to an
    /// arithmetic constraint)?
    fn starts_metric_atom(&self) -> bool {
        match self.peek() {
            TokenKind::LowerIdent(s) => {
                let s = s.as_str();
                if UNARY_OPS.contains(&s)
                    || s == "since"
                    || s == "until"
                    || s == "top"
                    || s == "bottom"
                {
                    return true;
                }
                if EXPR_FUNCS.contains(&s) {
                    return false;
                }
                *self.peek_at(1) == TokenKind::LParen
            }
            _ => false,
        }
    }

    fn metric_atom(&mut self) -> Result<MetricAtom> {
        match self.peek_lower() {
            Some("boxminus") => {
                self.bump();
                let rho = self.rho_or_default()?;
                Ok(MetricAtom::BoxMinus(rho, Box::new(self.metric_atom()?)))
            }
            Some("boxplus") => {
                self.bump();
                let rho = self.rho_or_default()?;
                Ok(MetricAtom::BoxPlus(rho, Box::new(self.metric_atom()?)))
            }
            Some("diamondminus") => {
                self.bump();
                let rho = self.rho_or_default()?;
                Ok(MetricAtom::DiamondMinus(rho, Box::new(self.metric_atom()?)))
            }
            Some("diamondplus") => {
                self.bump();
                let rho = self.rho_or_default()?;
                Ok(MetricAtom::DiamondPlus(rho, Box::new(self.metric_atom()?)))
            }
            Some("since") | Some("until") => {
                let is_since = self.peek_lower() == Some("since");
                self.bump();
                let rho = self.rho_or_default()?;
                self.expect(TokenKind::LParen, "'('")?;
                let m1 = self.metric_atom()?;
                self.expect(TokenKind::Comma, "','")?;
                let m2 = self.metric_atom()?;
                self.expect(TokenKind::RParen, "')'")?;
                Ok(if is_since {
                    MetricAtom::Since(Box::new(m1), rho, Box::new(m2))
                } else {
                    MetricAtom::Until(Box::new(m1), rho, Box::new(m2))
                })
            }
            Some("top") => {
                self.bump();
                Ok(MetricAtom::Top)
            }
            Some("bottom") => {
                self.bump();
                Ok(MetricAtom::Bottom)
            }
            _ => Ok(MetricAtom::Rel(self.atom()?)),
        }
    }

    fn atom(&mut self) -> Result<Atom> {
        let name = match self.bump() {
            TokenKind::LowerIdent(s) => s,
            other => return Err(self.err(format!("expected predicate name, found {other:?}"))),
        };
        self.expect(TokenKind::LParen, "'('")?;
        let mut args = Vec::new();
        if *self.peek() != TokenKind::RParen {
            loop {
                args.push(self.term()?);
                if *self.peek() == TokenKind::Comma {
                    self.bump();
                } else {
                    break;
                }
            }
        }
        self.expect(TokenKind::RParen, "')'")?;
        let mut atom = Atom::new(&name, args);
        if *self.peek() == TokenKind::At {
            self.bump();
            match self.bump() {
                TokenKind::UpperIdent(v) => atom.time_var = Some(Symbol::new(&v)),
                other => {
                    return Err(self.err(format!(
                        "expected time-capture variable after '@', found {other:?}"
                    )))
                }
            }
        }
        Ok(atom)
    }

    fn term(&mut self) -> Result<Term> {
        match self.bump() {
            TokenKind::UpperIdent(v) => Ok(Term::var(&v)),
            TokenKind::Underscore(_) => {
                self.anon += 1;
                Ok(Term::var(&format!("_anon{}", self.anon)))
            }
            TokenKind::Int(i) => Ok(Term::Val(Value::Int(i))),
            TokenKind::Decimal(d) => Ok(Term::Val(Value::num(
                d.parse::<f64>().map_err(|_| self.err("bad decimal"))?,
            ))),
            TokenKind::Str(s) => Ok(Term::Val(Value::sym(&s))),
            TokenKind::Minus => match self.bump() {
                TokenKind::Int(i) => Ok(Term::Val(Value::Int(-i))),
                TokenKind::Decimal(d) => Ok(Term::Val(Value::num(
                    -d.parse::<f64>().map_err(|_| self.err("bad decimal"))?,
                ))),
                other => Err(self.err(format!("expected number after '-', found {other:?}"))),
            },
            TokenKind::LowerIdent(s) => match s.as_str() {
                "true" => Ok(Term::Val(Value::Bool(true))),
                "false" => Ok(Term::Val(Value::Bool(false))),
                _ => Ok(Term::Val(Value::sym(&s))),
            },
            other => Err(self.err(format!("expected term, found {other:?}"))),
        }
    }

    // -------------------- metric intervals --------------------

    /// Parses `[lo,hi]` / `(lo,hi]` / … after an operator keyword, or
    /// defaults to `[1,1]`. A following `(` is only consumed as an interval
    /// when the lookahead matches `( bound ,`.
    fn rho_or_default(&mut self) -> Result<MetricInterval> {
        let open_paren_is_rho = *self.peek() == TokenKind::LParen && {
            let mut k = 1;
            if matches!(self.peek_at(k), TokenKind::Plus | TokenKind::Minus) {
                k += 1;
            }
            let num = matches!(self.peek_at(k), TokenKind::Int(_) | TokenKind::Decimal(_))
                || matches!(self.peek_at(k), TokenKind::LowerIdent(s) if s == "inf");
            num && *self.peek_at(k + 1) == TokenKind::Comma
        };
        if *self.peek() == TokenKind::LBracket || open_paren_is_rho {
            let iv = self.interval()?;
            MetricInterval::new(iv).map_err(|e| self.err(e))
        } else {
            Ok(MetricInterval::one())
        }
    }

    /// `[a,b]` and friends. Bounds: signed numbers, `inf`, `+inf`, `-inf`.
    fn interval(&mut self) -> Result<Interval> {
        let lo_closed = match self.bump() {
            TokenKind::LBracket => true,
            TokenKind::LParen => false,
            other => return Err(self.err(format!("expected interval, found {other:?}"))),
        };
        let lo = self.bound()?;
        // Punctual shorthand `[t]`.
        if lo_closed && *self.peek() == TokenKind::RBracket {
            self.bump();
            return match lo {
                TimeBound::Finite(r) => Ok(Interval::point(r)),
                _ => Err(self.err("punctual interval must be finite")),
            };
        }
        self.expect(TokenKind::Comma, "','")?;
        let hi = self.bound()?;
        let hi_closed = match self.bump() {
            TokenKind::RBracket => true,
            TokenKind::RParen => false,
            other => return Err(self.err(format!("expected ']' or ')', found {other:?}"))),
        };
        Interval::new(lo, lo_closed, hi, hi_closed)
            .ok_or_else(|| self.err("empty interval annotation"))
    }

    fn bound(&mut self) -> Result<TimeBound> {
        let mut neg = false;
        if *self.peek() == TokenKind::Minus {
            self.bump();
            neg = true;
        } else if *self.peek() == TokenKind::Plus {
            self.bump();
        }
        match self.bump() {
            TokenKind::Int(i) => Ok(TimeBound::Finite(Rational::integer(if neg {
                -i
            } else {
                i
            }))),
            TokenKind::Decimal(d) => {
                let r: Rational = d
                    .parse()
                    .map_err(|_| self.err("interval bounds must be exact rationals"))?;
                Ok(TimeBound::Finite(if neg { -r } else { r }))
            }
            TokenKind::LowerIdent(s) if s == "inf" => Ok(if neg {
                TimeBound::NegInf
            } else {
                TimeBound::PosInf
            }),
            other => Err(self.err(format!("expected interval bound, found {other:?}"))),
        }
    }

    /// Fact annotation: a bare number means the punctual interval.
    fn annotation(&mut self) -> Result<Interval> {
        match self.peek() {
            TokenKind::LBracket | TokenKind::LParen => self.interval(),
            _ => {
                let b = self.bound()?;
                match b {
                    TimeBound::Finite(r) => Ok(Interval::point(r)),
                    _ => Err(self.err("punctual annotation must be finite")),
                }
            }
        }
    }

    // -------------------- expressions --------------------

    fn expr(&mut self) -> Result<Expr> {
        let mut lhs = self.expr_mul()?;
        loop {
            match self.peek() {
                TokenKind::Plus => {
                    self.bump();
                    lhs = Expr::Add(Box::new(lhs), Box::new(self.expr_mul()?));
                }
                TokenKind::Minus => {
                    self.bump();
                    lhs = Expr::Sub(Box::new(lhs), Box::new(self.expr_mul()?));
                }
                _ => return Ok(lhs),
            }
        }
    }

    fn expr_mul(&mut self) -> Result<Expr> {
        let mut lhs = self.expr_unary()?;
        loop {
            match self.peek() {
                TokenKind::Star => {
                    self.bump();
                    lhs = Expr::Mul(Box::new(lhs), Box::new(self.expr_unary()?));
                }
                TokenKind::Slash => {
                    self.bump();
                    lhs = Expr::Div(Box::new(lhs), Box::new(self.expr_unary()?));
                }
                _ => return Ok(lhs),
            }
        }
    }

    fn expr_unary(&mut self) -> Result<Expr> {
        if *self.peek() == TokenKind::Minus {
            self.bump();
            return Ok(Expr::Neg(Box::new(self.expr_unary()?)));
        }
        self.expr_primary()
    }

    fn expr_primary(&mut self) -> Result<Expr> {
        match self.peek().clone() {
            TokenKind::LParen => {
                self.bump();
                let e = self.expr()?;
                self.expect(TokenKind::RParen, "')'")?;
                Ok(e)
            }
            TokenKind::UpperIdent(v) => {
                self.bump();
                Ok(Expr::var(&v))
            }
            TokenKind::Int(i) => {
                self.bump();
                Ok(Expr::val(i))
            }
            TokenKind::Decimal(d) => {
                self.bump();
                Ok(Expr::val(
                    d.parse::<f64>().map_err(|_| self.err("bad decimal"))?,
                ))
            }
            TokenKind::LowerIdent(s) if EXPR_FUNCS.contains(&s.as_str()) => {
                self.bump();
                self.expect(TokenKind::LParen, "'('")?;
                let a = self.expr()?;
                let e = match s.as_str() {
                    "abs" => {
                        self.expect(TokenKind::RParen, "')'")?;
                        Expr::Abs(Box::new(a))
                    }
                    "min" | "max" => {
                        self.expect(TokenKind::Comma, "','")?;
                        let b = self.expr()?;
                        self.expect(TokenKind::RParen, "')'")?;
                        if s == "min" {
                            Expr::Min(Box::new(a), Box::new(b))
                        } else {
                            Expr::Max(Box::new(a), Box::new(b))
                        }
                    }
                    _ => unreachable!("EXPR_FUNCS checked"),
                };
                Ok(e)
            }
            TokenKind::LowerIdent(s) => {
                // Bare symbol constant in a comparison (e.g. X = abcSym).
                self.bump();
                match s.as_str() {
                    "true" => Ok(Expr::val(true)),
                    "false" => Ok(Expr::val(false)),
                    _ => Ok(Expr::Term(Term::Val(Value::sym(&s)))),
                }
            }
            other => Err(self.err(format!("expected expression, found {other:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_simple_rule() {
        let r = parse_rule("isOpen(A) :- tranM(A, M).").unwrap();
        assert_eq!(r.head.atom.pred, Symbol::new("isOpen"));
        assert_eq!(r.body.len(), 1);
    }

    #[test]
    fn parses_temporal_recursion_rule() {
        let r = parse_rule("isOpen(A) :- boxminus isOpen(A), not withdraw(A).").unwrap();
        assert!(matches!(
            &r.body[0],
            Literal::Pos(MetricAtom::BoxMinus(rho, _)) if *rho == MetricInterval::one()
        ));
        assert!(matches!(&r.body[1], Literal::Neg(MetricAtom::Rel(_))));
    }

    #[test]
    fn parses_explicit_rho() {
        let r = parse_rule("p(X) :- diamondminus[0, 5] q(X).").unwrap();
        match &r.body[0] {
            Literal::Pos(MetricAtom::DiamondMinus(rho, _)) => {
                assert_eq!(*rho, MetricInterval::closed_int(0, 5));
            }
            other => panic!("unexpected literal {other:?}"),
        }
    }

    #[test]
    fn parses_half_open_rho() {
        let r = parse_rule("p(X) :- boxminus(0, 5] q(X).").unwrap();
        match &r.body[0] {
            Literal::Pos(MetricAtom::BoxMinus(rho, _)) => {
                assert!(!rho.as_interval().lo_closed());
                assert!(rho.as_interval().hi_closed());
            }
            other => panic!("unexpected literal {other:?}"),
        }
    }

    #[test]
    fn parses_since_until() {
        let r = parse_rule("p(X) :- since[1, 2](q(X), r(X)).").unwrap();
        assert!(matches!(
            &r.body[0],
            Literal::Pos(MetricAtom::Since(_, _, _))
        ));
        let r = parse_rule("p(X) :- until(q(X), r(X)).").unwrap();
        assert!(matches!(
            &r.body[0],
            Literal::Pos(MetricAtom::Until(_, _, _))
        ));
    }

    #[test]
    fn parses_constraints_and_arithmetic() {
        let r = parse_rule("m(A, M) :- mg(A, X), tr(A, Y), M = X + Y.").unwrap();
        match &r.body[2] {
            Literal::Constraint(lhs, CmpOp::Eq, rhs) => {
                assert_eq!(lhs.to_string(), "M");
                assert_eq!(rhs.to_string(), "(X + Y)");
            }
            other => panic!("unexpected literal {other:?}"),
        }
        let r = parse_rule("c(I) :- rate(I), I > 1, J = -I / 2 * abs(I).").unwrap();
        assert_eq!(r.body.len(), 3);
    }

    #[test]
    fn parses_aggregate_head() {
        let r = parse_rule("event(sum(S)) :- modPos(A, S).").unwrap();
        assert_eq!(r.head.aggregate, Some((AggFn::Sum, 0)));
        let r = parse_rule("tally(G, count(S)) :- obs(G, S).").unwrap();
        assert_eq!(r.head.aggregate, Some((AggFn::Count, 1)));
        assert_eq!(r.head.atom.arity(), 2);
    }

    #[test]
    fn parses_head_operators() {
        let r = parse_rule("boxplus[0, 3] alarm(X) :- spike(X).").unwrap();
        assert_eq!(r.head.ops.len(), 1);
        assert!(matches!(r.head.ops[0], HeadOp::BoxPlus(_)));
    }

    #[test]
    fn parses_time_capture() {
        let r = parse_rule("tdiff(T, T) :- start()@T.").unwrap();
        match &r.body[0] {
            Literal::Pos(MetricAtom::Rel(a)) => {
                assert_eq!(a.time_var, Some(Symbol::new("T")));
            }
            other => panic!("unexpected literal {other:?}"),
        }
    }

    #[test]
    fn parses_facts() {
        let facts = parse_facts(
            "price(1362.5)@100.\n\
             tranM(acc1, 20.0)@[3, 7].\n\
             skew(-2445.98)@(0, inf).\n\
             flag(true).",
        )
        .unwrap();
        assert_eq!(facts.len(), 4);
        assert_eq!(facts[0].interval, Interval::at(100));
        assert_eq!(facts[1].interval, Interval::closed_int(3, 7));
        assert!(!facts[2].interval.hi().is_finite());
        assert_eq!(facts[3].interval, Interval::ALL);
        assert_eq!(facts[1].args[0], Value::sym("acc1"));
    }

    #[test]
    fn anonymous_variables_are_renamed_apart() {
        let r = parse_rule("p(X) :- q(X, _), r(_, X).").unwrap();
        let a1 = match &r.body[0] {
            Literal::Pos(MetricAtom::Rel(a)) => a.args[1],
            _ => panic!("expected atom"),
        };
        let a2 = match &r.body[1] {
            Literal::Pos(MetricAtom::Rel(a)) => a.args[0],
            _ => panic!("expected atom"),
        };
        assert_ne!(a1, a2);
    }

    #[test]
    fn mixed_source_splits_rules_and_facts() {
        let (p, f) = parse_source("p(X) :- q(X).\nq(a)@1.\nq(b)@2.").unwrap();
        assert_eq!(p.rules.len(), 1);
        assert_eq!(f.len(), 2);
    }

    #[test]
    fn rejects_negative_rho() {
        assert!(parse_rule("p(X) :- boxminus[-1, 2] q(X).").is_err());
    }

    #[test]
    fn rejects_non_ground_fact() {
        assert!(parse_facts("p(X)@1.").is_err());
    }

    #[test]
    fn rejects_two_aggregates() {
        assert!(parse_rule("e(sum(S), sum(T)) :- o(S, T).").is_err());
    }

    #[test]
    fn error_positions_are_reported() {
        let e = parse_rule("p(X) :- q(X) r(X).").unwrap_err();
        match e {
            Error::Parse { line, .. } => assert_eq!(line, 1),
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn top_and_bottom() {
        let r = parse_rule("p(X) :- q(X), not bottom.").unwrap();
        assert!(matches!(&r.body[1], Literal::Neg(MetricAtom::Bottom)));
    }

    #[test]
    fn display_then_reparse_is_stable() {
        let src = "margin(A, M) :- diamondminus margin(A, X), tranM(A, Y), M = X + Y, boxminus isOpen(A).";
        let r1 = parse_rule(src).unwrap();
        let r2 = parse_rule(&r1.to_string()).unwrap();
        assert_eq!(r1.head, r2.head);
        assert_eq!(r1.body.len(), r2.body.len());
    }
}
