//! Aggregate statistics of a trace — the columns of Figure 3 plus volume
//! and account counts for reporting.

use chronolog_perp::{Method, Trace};

/// Summary statistics of one market window.
#[derive(Clone, Debug, PartialEq)]
pub struct TraceStats {
    /// Total interactions.
    pub events: usize,
    /// Completed trades (`closePos`).
    pub trades: usize,
    /// Distinct accounts.
    pub accounts: usize,
    /// Skew at window start.
    pub initial_skew: f64,
    /// Σ |size × price| over orders (dollar volume).
    pub volume: f64,
    /// Deposits count.
    pub deposits: usize,
    /// Withdrawals count.
    pub withdrawals: usize,
    /// Position modifications (including opens).
    pub orders: usize,
    /// Window length in seconds.
    pub span_secs: i64,
}

impl TraceStats {
    /// Computes the statistics of a trace.
    pub fn of(trace: &Trace) -> TraceStats {
        let mut volume = 0.0;
        let mut deposits = 0;
        let mut withdrawals = 0;
        let mut orders = 0;
        for e in &trace.events {
            match e.method {
                Method::TransferMargin { .. } => deposits += 1,
                Method::Withdraw => withdrawals += 1,
                Method::ModifyPosition { size } => {
                    orders += 1;
                    volume += (size * e.price).abs();
                }
                Method::ClosePosition => {}
            }
        }
        TraceStats {
            events: trace.event_count(),
            trades: trace.trade_count(),
            accounts: trace.accounts().len(),
            initial_skew: trace.initial_skew,
            volume,
            deposits,
            withdrawals,
            orders,
            span_secs: trace.span_secs(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{generate, paper_intervals};

    #[test]
    fn stats_partition_the_events() {
        for config in paper_intervals() {
            let trace = generate(&config);
            let s = TraceStats::of(&trace);
            assert_eq!(s.deposits + s.withdrawals + s.orders + s.trades, s.events);
            assert!(s.volume > 0.0);
            assert!(s.accounts > 0);
        }
    }

    #[test]
    fn empty_trace_stats() {
        let trace = Trace {
            start_time: 0,
            end_time: 7200,
            initial_skew: 5.0,
            initial_price: 1000.0,
            events: vec![],
        };
        let s = TraceStats::of(&trace);
        assert_eq!(s.events, 0);
        assert_eq!(s.volume, 0.0);
        assert_eq!(s.initial_skew, 5.0);
    }
}
