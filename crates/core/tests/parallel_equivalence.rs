//! Property tests for the join access-path and threading knobs: whatever
//! `index_joins` and `threads` are set to, materialization must produce
//! the *same database* — the secondary indexes are a pure access-path
//! optimization and the worker pool merges in fixed rule order, so both
//! are observationally invisible.
//!
//! Generation mirrors `random_programs.rs`: deterministic in-repo
//! `SmallRng`, one seed per case, every failure reproducible from the
//! printed seed. Fact generation here skews toward repeated join keys and
//! mixed `Int`/`Num` values so the indexes' semantic-equality buckets
//! (`3` vs `3.0`) actually get exercised.

use chronolog_core::{Database, Reasoner, ReasonerConfig, Value};
use chronolog_obs::SmallRng;

const T_MIN: i64 = 0;
const T_MAX: i64 = 16;

/// Random stratified program over EDB e1/1, e2/2 and IDB p0..p3 —
/// same shape family as `random_programs.rs`, recursion and negation
/// included, plus comparison guards to keep some rules selective.
fn gen_program(rng: &mut SmallRng) -> String {
    let idb = [("p0", 1usize), ("p1", 2usize), ("p2", 1), ("p3", 2)];
    let n = rng.gen_range_usize(2, 7);
    let mut rules = Vec::new();
    for _ in 0..n {
        let head = rng.gen_range_usize(0, idb.len());
        let (head_name, head_arity) = idb[head];
        let head_args = if head_arity == 1 { "X" } else { "X, Y" };
        let mut body = Vec::new();
        // First atom binds the head variables.
        body.push(if head_arity == 1 {
            "e2(X, _)".to_string()
        } else {
            "e2(X, Y)".to_string()
        });
        // Join atoms: rejoin on X, sometimes through an operator, sometimes
        // against a same-or-lower IDB predicate (level recursion).
        for _ in 0..rng.gen_range_usize(0, 3) {
            let src = rng.gen_range_usize(0, 2 + head + 1);
            let atom = match src {
                0 => "e1(X)".to_string(),
                1 => "e2(X, _)".to_string(),
                k => {
                    let (name, arity) = idb[k - 2];
                    if arity == 1 {
                        format!("{name}(X)")
                    } else {
                        format!("{name}(X, _)")
                    }
                }
            };
            let wlo = rng.gen_range_i64(0, 3);
            let whi = wlo + rng.gen_range_i64(0, 3);
            body.push(match rng.gen_range_usize(0, 4) {
                0 => format!("diamondminus[{wlo}, {whi}] {atom}"),
                1 => format!("boxminus[1, 1] {atom}"),
                _ => atom,
            });
        }
        // Strictly-lower negation keeps the program stratifiable.
        if head > 0 && rng.gen_bool(0.4) {
            let (name, arity) = idb[rng.gen_range_usize(0, head)];
            body.push(if arity == 1 {
                format!("not {name}(X)")
            } else {
                format!("not {name}(X, _)")
            });
        }
        rules.push(format!("{head_name}({head_args}) :- {}.", body.join(", ")));
    }
    rules.join("\n")
}

/// Facts with deliberately skewed, semantically colliding keys: values are
/// drawn from a small pool mixing `Int` and `Num` spellings of the same
/// numbers, so index buckets hold many tuples and `3`/`3.0` must land in
/// the same bucket for indexed runs to match scans.
fn gen_db(rng: &mut SmallRng) -> Database {
    let pool = [
        Value::Int(0),
        Value::Int(1),
        Value::Int(2),
        Value::Int(3),
        Value::num(1.0),
        Value::num(3.0),
        Value::num(2.5),
    ];
    let mut db = Database::new();
    for _ in 0..rng.gen_range_usize(5, 40) {
        let t = rng.gen_range_i64(T_MIN, T_MAX + 1);
        if rng.gen_bool(0.3) {
            let x = pool[rng.gen_range_usize(0, pool.len())];
            db.assert_at("e1", &[x], t);
        } else {
            let x = pool[rng.gen_range_usize(0, pool.len())];
            let y = pool[rng.gen_range_usize(0, pool.len())];
            db.assert_at("e2", &[x, y], t);
        }
    }
    db
}

fn materialize(src: &str, db: &Database, config: ReasonerConfig) -> (String, usize, Vec<usize>) {
    let program = chronolog_core::parse_program(src).unwrap();
    let m = Reasoner::new(program, config.with_horizon(T_MIN, T_MAX))
        .unwrap_or_else(|e| panic!("generated program must validate: {e}\n{src}"))
        .materialize(db)
        .unwrap();
    let per_rule = m.stats.rules.iter().map(|r| r.derivations).collect();
    (m.database.to_facts_text(), m.stats.derived_tuples, per_rule)
}

/// Indexed probes must select exactly the tuples a full scan would unify:
/// same derived database, same derivation counts.
#[test]
fn indexed_joins_equal_full_scan() {
    for case in 0..64u64 {
        let mut rng = SmallRng::seed_from_u64(0x17D3 ^ (case << 4));
        let src = gen_program(&mut rng);
        let db = gen_db(&mut rng);
        let indexed = materialize(&src, &db, ReasonerConfig::default());
        let scanned = materialize(
            &src,
            &db,
            ReasonerConfig {
                index_joins: false,
                ..ReasonerConfig::default()
            },
        );
        assert_eq!(
            indexed, scanned,
            "case {case}: indexed vs scanned diverged\n{src}"
        );
    }
}

/// Thread count must be observationally invisible: byte-identical facts
/// text and identical per-rule derivation counts for 1 vs 4 workers.
#[test]
fn threaded_evaluation_equals_sequential() {
    for case in 0..64u64 {
        let mut rng = SmallRng::seed_from_u64(0x7EAD5 ^ (case << 4));
        let src = gen_program(&mut rng);
        let db = gen_db(&mut rng);
        let seq = materialize(&src, &db, ReasonerConfig::default().with_threads(1));
        let par = materialize(&src, &db, ReasonerConfig::default().with_threads(4));
        assert_eq!(
            seq, par,
            "case {case}: threads=1 vs threads=4 diverged\n{src}"
        );
    }
}
