//! A small deterministic RNG (SplitMix64) with the sampling helpers the
//! workspace needs — the offline replacement for the `rand` crate. Not
//! cryptographic; used for scenario generation and randomized tests where
//! seeded reproducibility is the requirement.

/// A seeded SplitMix64 generator.
#[derive(Clone, Debug)]
pub struct SmallRng {
    state: u64,
}

impl SmallRng {
    /// Seeds the generator.
    pub fn seed_from_u64(seed: u64) -> SmallRng {
        SmallRng { state: seed }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Uniform float in `[0, 1)`.
    pub fn gen_f64(&mut self) -> f64 {
        // 53 random mantissa bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform float in `[lo, hi)`.
    pub fn gen_range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo < hi, "empty range {lo}..{hi}");
        lo + self.gen_f64() * (hi - lo)
    }

    /// Uniform integer in `[lo, hi)`.
    pub fn gen_range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo < hi, "empty range {lo}..{hi}");
        let span = (hi - lo) as u64;
        lo + (self.next_u64() % span) as i64
    }

    /// Uniform usize in `[lo, hi)`.
    pub fn gen_range_usize(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi, "empty range {lo}..{hi}");
        lo + (self.next_u64() % (hi - lo) as u64) as usize
    }

    /// `true` with probability `p`.
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_f64() < p
    }

    /// Fisher–Yates shuffle in place.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.gen_range_usize(0, i + 1);
            slice.swap(i, j);
        }
    }

    /// A uniformly chosen element, or `None` on an empty slice.
    pub fn choose<'a, T>(&mut self, slice: &'a [T]) -> Option<&'a T> {
        if slice.is_empty() {
            None
        } else {
            Some(&slice[self.gen_range_usize(0, slice.len())])
        }
    }

    /// `k` distinct indices sampled uniformly from `0..n` (unsorted).
    /// Panics when `k > n`.
    pub fn sample_indices(&mut self, n: usize, k: usize) -> Vec<usize> {
        assert!(k <= n, "cannot sample {k} distinct of {n}");
        // Partial Fisher–Yates over a dense index vector: n is small in
        // every caller (thousands), so O(n) memory is fine and the result
        // is exactly uniform.
        let mut idx: Vec<usize> = (0..n).collect();
        for i in 0..k {
            let j = self.gen_range_usize(i, n);
            idx.swap(i, j);
        }
        idx.truncate(k);
        idx
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_under_seed() {
        let seq = |seed| {
            let mut r = SmallRng::seed_from_u64(seed);
            (0..16).map(|_| r.next_u64()).collect::<Vec<_>>()
        };
        assert_eq!(seq(7), seq(7));
        assert_ne!(seq(7), seq(8));
    }

    #[test]
    fn ranges_are_respected() {
        let mut r = SmallRng::seed_from_u64(1);
        for _ in 0..2_000 {
            let v = r.gen_range_i64(-5, 9);
            assert!((-5..9).contains(&v));
            let f = r.gen_range_f64(0.25, 0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn sample_indices_are_distinct_and_in_range() {
        let mut r = SmallRng::seed_from_u64(3);
        let got = r.sample_indices(100, 40);
        assert_eq!(got.len(), 40);
        let mut sorted = got.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 40);
        assert!(sorted.iter().all(|&i| i < 100));
        // Full sample is a permutation.
        let all = r.sample_indices(10, 10);
        let mut all_sorted = all.clone();
        all_sorted.sort_unstable();
        assert_eq!(all_sorted, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn shuffle_permutes() {
        let mut r = SmallRng::seed_from_u64(5);
        let mut v: Vec<usize> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "astronomically unlikely to be identity");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = SmallRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.3)).count();
        assert!((2_500..3_500).contains(&hits), "{hits}");
    }
}
