//! The span profiler must be a pure observer.
//!
//! Two guarantees are pinned here: with no recorder configured the engine
//! starts zero spans (the instrumentation is dormant, not merely cheap),
//! and attaching a recorder changes nothing about what is derived — the
//! materialized database is byte-identical with profiling on or off.

use chronolog_core::{parse_source, Database, Reasoner, ReasonerConfig};
use chronolog_obs::{spans_started, SpanRecorder};

fn corpus() -> Vec<(&'static str, String)> {
    ["fibonacci", "funding", "margin", "netting", "sla"]
        .into_iter()
        .map(|name| {
            let path = format!("{}/../../corpus/{name}.dmtl", env!("CARGO_MANIFEST_DIR"));
            let src = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path}: {e}"));
            (name, src)
        })
        .collect()
}

fn materialize(src: &str, profiler: Option<SpanRecorder>, threads: usize) -> String {
    let (program, facts) = parse_source(src).unwrap();
    let mut db = Database::new();
    db.extend_facts(&facts).unwrap();
    Reasoner::new(
        program,
        ReasonerConfig {
            profiler,
            threads,
            ..ReasonerConfig::default().with_horizon(0, 40)
        },
    )
    .unwrap()
    .materialize(&db)
    .unwrap()
    .database
    .to_facts_text()
}

/// One test function on purpose: the zero-overhead check reads the
/// process-global span counter, so it must not race with a concurrently
/// running profiled test in the same binary.
#[test]
fn profiling_is_dormant_when_off_and_invisible_when_on() {
    // Off: not a single span may be started anywhere in the engine.
    let mut baseline = Vec::new();
    let before = spans_started();
    for (name, src) in corpus() {
        baseline.push((name, materialize(&src, None, 1)));
        baseline.push((name, materialize(&src, None, 4)));
    }
    assert_eq!(
        spans_started() - before,
        0,
        "unprofiled runs must not start spans"
    );

    // On: identical derivations, and the recorder actually saw the run.
    let mut profiled = Vec::new();
    for (name, src) in corpus() {
        for threads in [1, 4] {
            let recorder = SpanRecorder::new();
            profiled.push((name, materialize(&src, Some(recorder.clone()), threads)));
            assert!(
                recorder.spans_recorded() > 0,
                "{name}: profiled run ({threads} threads) recorded no spans"
            );
            assert_eq!(recorder.dropped(), 0, "{name}: spans dropped");
            let lanes = recorder.lanes();
            assert!(
                lanes
                    .iter()
                    .any(|(_, records)| records.iter().any(|r| r.name == "materialize")),
                "{name}: missing materialize root span"
            );
        }
    }
    for (i, (name, off_text)) in baseline.iter().enumerate() {
        let (_, on_text) = &profiled[i];
        assert_eq!(
            off_text, on_text,
            "{name}: derived facts differ with profiling enabled"
        );
    }
}
