//! Tokenizer for the chronolog concrete syntax.
//!
//! The syntax is line-oriented Datalog with MTL operator keywords:
//!
//! ```text
//! % MARGIN module, rule 2 of the paper
//! isOpen(A) :- boxminus isOpen(A), not withdraw(A).
//! margin(A, M) :- diamondminus margin(A, X), tranM(A, Y), M = X + Y.
//! event(sum(S)) :- modPos(A, S).
//! price(1362.5)@[100, 200].
//! ```

use crate::error::{Error, Result};

/// A lexical token with its source position.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// The token kind/payload.
    pub kind: TokenKind,
    /// 1-based line.
    pub line: usize,
    /// 1-based column.
    pub col: usize,
}

/// Token kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// Identifier starting with a lowercase letter (predicate/symbol/keyword).
    LowerIdent(String),
    /// Identifier starting with an uppercase letter (variable).
    UpperIdent(String),
    /// `_` or `_name` (anonymous variable).
    Underscore(String),
    /// Integer literal.
    Int(i64),
    /// Decimal literal (kept as text for exact rational parsing where needed).
    Decimal(String),
    /// Double-quoted string literal.
    Str(String),
    /// `:-`
    Arrow,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `,`
    Comma,
    /// `.`
    Dot,
    /// `@`
    At,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `=`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// End of input.
    Eof,
}

/// Tokenizes a full source text.
pub fn tokenize(src: &str) -> Result<Vec<Token>> {
    let mut out = Vec::new();
    let mut line = 1usize;
    let mut col = 1usize;
    let bytes: Vec<char> = src.chars().collect();
    let mut i = 0usize;

    macro_rules! tok {
        ($kind:expr, $len:expr) => {{
            out.push(Token {
                kind: $kind,
                line,
                col,
            });
            col += $len;
            i += $len;
        }};
    }

    while i < bytes.len() {
        let c = bytes[i];
        match c {
            '\n' => {
                line += 1;
                col = 1;
                i += 1;
            }
            ' ' | '\t' | '\r' => {
                col += 1;
                i += 1;
            }
            '%' => {
                while i < bytes.len() && bytes[i] != '\n' {
                    i += 1;
                }
            }
            '/' if bytes.get(i + 1) == Some(&'/') => {
                while i < bytes.len() && bytes[i] != '\n' {
                    i += 1;
                }
            }
            ':' => {
                if bytes.get(i + 1) == Some(&'-') {
                    tok!(TokenKind::Arrow, 2);
                } else {
                    return Err(Error::parse(line, col, "expected ':-'"));
                }
            }
            '(' => tok!(TokenKind::LParen, 1),
            ')' => tok!(TokenKind::RParen, 1),
            '[' => tok!(TokenKind::LBracket, 1),
            ']' => tok!(TokenKind::RBracket, 1),
            ',' => tok!(TokenKind::Comma, 1),
            '.' => tok!(TokenKind::Dot, 1),
            '@' => tok!(TokenKind::At, 1),
            '+' => tok!(TokenKind::Plus, 1),
            '-' => tok!(TokenKind::Minus, 1),
            '*' => tok!(TokenKind::Star, 1),
            '/' => tok!(TokenKind::Slash, 1),
            '=' => tok!(TokenKind::Eq, 1),
            '!' => {
                if bytes.get(i + 1) == Some(&'=') {
                    tok!(TokenKind::Ne, 2);
                } else {
                    return Err(Error::parse(line, col, "expected '!='"));
                }
            }
            '<' => {
                if bytes.get(i + 1) == Some(&'=') {
                    tok!(TokenKind::Le, 2);
                } else {
                    tok!(TokenKind::Lt, 1);
                }
            }
            '>' => {
                if bytes.get(i + 1) == Some(&'=') {
                    tok!(TokenKind::Ge, 2);
                } else {
                    tok!(TokenKind::Gt, 1);
                }
            }
            '"' => {
                let start = i + 1;
                let mut j = start;
                while j < bytes.len() && bytes[j] != '"' {
                    if bytes[j] == '\n' {
                        return Err(Error::parse(line, col, "unterminated string literal"));
                    }
                    j += 1;
                }
                if j >= bytes.len() {
                    return Err(Error::parse(line, col, "unterminated string literal"));
                }
                let s: String = bytes[start..j].iter().collect();
                let len = j + 1 - i;
                out.push(Token {
                    kind: TokenKind::Str(s),
                    line,
                    col,
                });
                col += len;
                i = j + 1;
            }
            c if c.is_ascii_digit() => {
                let start = i;
                let mut j = i;
                while j < bytes.len() && bytes[j].is_ascii_digit() {
                    j += 1;
                }
                let mut is_decimal = false;
                // A '.' is part of the number only when followed by a digit;
                // otherwise it terminates a fact/rule.
                if j < bytes.len()
                    && bytes[j] == '.'
                    && bytes.get(j + 1).is_some_and(|c| c.is_ascii_digit())
                {
                    is_decimal = true;
                    j += 1;
                    while j < bytes.len() && bytes[j].is_ascii_digit() {
                        j += 1;
                    }
                }
                // Scientific notation: 1e-12 / 2.5e3.
                if j < bytes.len() && (bytes[j] == 'e' || bytes[j] == 'E') {
                    let mut k = j + 1;
                    if k < bytes.len() && (bytes[k] == '+' || bytes[k] == '-') {
                        k += 1;
                    }
                    if k < bytes.len() && bytes[k].is_ascii_digit() {
                        is_decimal = true;
                        j = k;
                        while j < bytes.len() && bytes[j].is_ascii_digit() {
                            j += 1;
                        }
                    }
                }
                let text: String = bytes[start..j].iter().collect();
                let len = j - start;
                let kind = if is_decimal {
                    TokenKind::Decimal(text)
                } else {
                    let v: i64 = text
                        .parse()
                        .map_err(|_| Error::parse(line, col, "integer literal out of range"))?;
                    TokenKind::Int(v)
                };
                out.push(Token { kind, line, col });
                col += len;
                i = j;
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                let mut j = i;
                while j < bytes.len() && (bytes[j].is_ascii_alphanumeric() || bytes[j] == '_') {
                    j += 1;
                }
                let text: String = bytes[start..j].iter().collect();
                let len = j - start;
                let kind = if c == '_' {
                    TokenKind::Underscore(text)
                } else if c.is_ascii_uppercase() {
                    TokenKind::UpperIdent(text)
                } else {
                    TokenKind::LowerIdent(text)
                };
                out.push(Token { kind, line, col });
                col += len;
                i = j;
            }
            other => {
                return Err(Error::parse(
                    line,
                    col,
                    format!("unexpected character '{other}'"),
                ));
            }
        }
    }
    out.push(Token {
        kind: TokenKind::Eof,
        line,
        col,
    });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        tokenize(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn tokenizes_a_rule() {
        let ks = kinds("isOpen(A) :- boxminus isOpen(A), not withdraw(A).");
        assert_eq!(ks[0], TokenKind::LowerIdent("isOpen".into()));
        assert_eq!(ks[1], TokenKind::LParen);
        assert_eq!(ks[2], TokenKind::UpperIdent("A".into()));
        assert!(ks.contains(&TokenKind::Arrow));
        assert_eq!(*ks.last().unwrap(), TokenKind::Eof);
    }

    #[test]
    fn distinguishes_decimal_from_terminating_dot() {
        let ks = kinds("p(1.5). q(2).");
        assert_eq!(ks[2], TokenKind::Decimal("1.5".into()));
        assert_eq!(ks[4], TokenKind::Dot);
        assert_eq!(ks[7], TokenKind::Int(2));
        assert_eq!(ks[9], TokenKind::Dot);
    }

    #[test]
    fn scientific_notation() {
        let ks = kinds("p(1e-12, 2.5E3).");
        assert_eq!(ks[2], TokenKind::Decimal("1e-12".into()));
        assert_eq!(ks[4], TokenKind::Decimal("2.5E3".into()));
    }

    #[test]
    fn comments_are_skipped() {
        let ks = kinds("% a comment\np(X). // another\n");
        assert_eq!(ks[0], TokenKind::LowerIdent("p".into()));
        assert_eq!(ks.len(), 6); // p ( X ) . EOF
    }

    #[test]
    fn comparison_operators() {
        let ks = kinds("X <= 3, Y != 4, Z >= 5, W < 6, V > 7, U = 8");
        assert!(ks.contains(&TokenKind::Le));
        assert!(ks.contains(&TokenKind::Ne));
        assert!(ks.contains(&TokenKind::Ge));
        assert!(ks.contains(&TokenKind::Lt));
        assert!(ks.contains(&TokenKind::Gt));
        assert!(ks.contains(&TokenKind::Eq));
    }

    #[test]
    fn string_literals() {
        let ks = kinds(r#"p("hello world")."#);
        assert_eq!(ks[2], TokenKind::Str("hello world".into()));
        assert!(tokenize(r#"p("unterminated"#).is_err());
    }

    #[test]
    fn position_tracking() {
        let toks = tokenize("p(X).\nq(Y).").unwrap();
        let q = toks
            .iter()
            .find(|t| t.kind == TokenKind::LowerIdent("q".into()))
            .unwrap();
        assert_eq!(q.line, 2);
        assert_eq!(q.col, 1);
    }

    #[test]
    fn rejects_stray_characters() {
        assert!(tokenize("p(X) ? q(X)").is_err());
        assert!(tokenize("p(X) : q(X)").is_err());
    }
}
