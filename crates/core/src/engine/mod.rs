//! The DatalogMTL materialization engine.
//!
//! [`Reasoner::materialize`] computes the horizon-bounded least model of a
//! stratified DatalogMTL program over a temporal database: strata are
//! processed in order; within a stratum, aggregate rules run once (their
//! inputs are strictly lower, per stratified aggregation) and the remaining
//! rules run to fixpoint with semi-naive deltas where the operators permit
//! (see [`eval::delta_eligible`]).

mod aggregate;
pub(crate) mod cost;
mod eval;
pub(crate) mod plan;
mod pool;
mod provenance;
mod session;

pub(crate) use eval::apply_constraint_row;
pub use plan::{PlanExplain, PlanStepExplain};
pub use provenance::{Explanation, ProvenanceLog};
pub use session::{BaseEvent, RepairPath, RepairReport, Session};

use crate::analysis::{check_program, DependencyGraph, Stratification};
use crate::ast::{HeadOp, Program, Rule, Term};
use crate::database::Database;
use crate::error::{Error, Result};
use crate::rewrite::{self, Query};
use crate::symbol::Symbol;
use crate::value::{Tuple, Value};
use chronolog_obs::{Json, SpanRecorder, Tracer};
use eval::{delta_eligible, execute_plan, EvalCtx, JoinCounters};
use mtl_temporal::{Interval, IntervalSet};
use pool::WorkerPool;
use std::collections::{BTreeMap, HashSet};
use std::sync::atomic::Ordering;
use std::sync::{Mutex, OnceLock};
use std::time::{Duration, Instant};

/// Minimum evaluation wall time of the *previous* fixpoint iteration for
/// the next one to use worker threads. Even with the persistent pool,
/// dispatching and latching cost microseconds per task; iterations cheaper
/// than this lose more to hand-off than they could recoup, so they run on
/// the main thread.
const PAR_MIN_EVAL_WALL: Duration = Duration::from_millis(2);

/// Minimum executions a cached plan must accumulate before its observed
/// misestimate may force a replan. Small windows are noise: the first few
/// fixpoint iterations see wildly different delta sizes by construction.
const ADAPTIVE_MIN_EXECUTIONS: u64 = 8;

/// Symmetric error factor (`max(f, 1/f)` of avg-actual vs. estimated rows)
/// at or above which a sustained misestimate forces a replan even when the
/// cardinality fingerprint never moved.
const ADAPTIVE_ERROR_THRESHOLD: f64 = 4.0;

/// Reasoner configuration.
#[derive(Clone, Debug)]
pub struct ReasonerConfig {
    /// The reasoning horizon: derivations are clipped to this interval (the
    /// paper's "interval under analysis"). With temporal recursion, a
    /// bounded horizon is what guarantees termination.
    pub horizon: Interval,
    /// Maximum fixpoint iterations per stratum.
    pub max_iterations: usize,
    /// Maximum total interval components in the materialization.
    pub max_components: usize,
    /// Semi-naive evaluation (`false` re-evaluates every rule fully on every
    /// iteration — the ablation baseline).
    pub semi_naive: bool,
    /// Record provenance for [`Materialization::explain`].
    pub provenance: bool,
    /// When set, the engine emits structured events (stratum/iteration
    /// boundaries, fixpoint deltas) into this bounded buffer.
    pub tracer: Option<Tracer>,
    /// When set, the engine records hierarchical timing spans
    /// (materialize → stratum → iteration → rule → join step) into this
    /// recorder, one lane per evaluating thread. `None` (the default)
    /// costs one `Option` check per site and allocates no spans.
    pub profiler: Option<SpanRecorder>,
    /// Worker threads for stratum evaluation (rule fan-out and the binding
    /// fan-out inside skewed joins). `1` is fully sequential; any value
    /// produces bit-identical output, derivation counts, and provenance —
    /// evaluation always reads the iteration-start snapshot and merges in
    /// fixed rule order.
    pub threads: usize,
    /// Probe lazily built secondary value indexes during joins instead of
    /// scanning relations (`false` is the ablation baseline).
    pub index_joins: bool,
    /// Probe the lazily built sorted-endpoint time index for masked reads
    /// instead of clipping every candidate tuple's interval set against the
    /// window (`false` is the ablation baseline).
    pub time_index: bool,
    /// Cost-based join reordering: compile each rule into a physical plan
    /// whose positive literals are ordered by estimated rows, re-planned
    /// when input cardinalities shift (`false` keeps the textual
    /// delta-first order — the `--no-reorder` ablation baseline). Either
    /// setting produces identical output; only the evaluation order and
    /// the access-path counters move.
    pub cost_based_reorder: bool,
    /// Adaptive planner feedback: when a cached plan's runtime row counts
    /// show a sustained misestimate (error factor ≥ 4 over ≥ 8 executions),
    /// force a replan whose cost estimates carry per-literal correction
    /// factors learned from the observed rows — even though the input
    /// cardinalities never crossed a fingerprint boundary. `false` is the
    /// `--no-adaptive` ablation baseline: identical facts and join-path
    /// counters, estimates just stay uncorrected. Facts can never differ
    /// because join order and access paths only affect evaluation order.
    pub adaptive: bool,
    /// Incremental repair for out-of-order session corrections
    /// ([`Session::retract`] / [`Session::submit_late`]): overdelete the
    /// affected temporal cone, then re-derive from the surviving base
    /// facts. `false` forces every correction onto the cold
    /// re-materialization fallback (the `--no-repair` ablation baseline —
    /// identical output, different path).
    pub repair: bool,
    /// Budget for one repair's overdelete cone, counted in tuples whose
    /// validity intersects the repair window. Exceeding it abandons the
    /// incremental path and falls back to cold re-materialization from
    /// the session's base-fact log — past this size a full rebuild is
    /// cheaper than patching.
    pub repair_budget: u64,
    /// Store relations as row-major `(tuple, interval set)` entries instead
    /// of the default columnar layout (interned `u32` value columns plus an
    /// interval arena) — the `--row-store` ablation baseline. Either layout
    /// produces byte-identical facts, counters, and provenance; only memory
    /// traffic and clone cost move.
    pub row_store: bool,
}

impl Default for ReasonerConfig {
    fn default() -> Self {
        ReasonerConfig {
            horizon: Interval::ALL,
            max_iterations: 1_000_000,
            max_components: 50_000_000,
            semi_naive: true,
            provenance: false,
            tracer: None,
            profiler: None,
            threads: 1,
            index_joins: true,
            time_index: true,
            cost_based_reorder: true,
            adaptive: true,
            repair: true,
            repair_budget: 50_000,
            row_store: false,
        }
    }
}

impl ReasonerConfig {
    /// Convenience: a bounded integer horizon.
    pub fn with_horizon(mut self, lo: i64, hi: i64) -> Self {
        self.horizon = Interval::closed_int(lo, hi);
        self
    }

    /// Convenience: set the evaluation worker count (clamped to ≥ 1).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Convenience: enable or disable incremental session repair
    /// (`false` = fallback-only, the ablation baseline).
    pub fn with_repair(mut self, repair: bool) -> Self {
        self.repair = repair;
        self
    }

    /// Convenience: set the repair overdelete budget (tuples touched).
    pub fn with_repair_budget(mut self, budget: u64) -> Self {
        self.repair_budget = budget;
        self
    }

    /// Convenience: select the row-major relation layout (`true` is the
    /// `--row-store` ablation baseline; `false` the columnar default).
    pub fn with_row_store(mut self, row_store: bool) -> Self {
        self.row_store = row_store;
        self
    }

    /// The relation storage layout this configuration selects.
    pub(crate) fn storage_mode(&self) -> crate::database::StorageMode {
        if self.row_store {
            crate::database::StorageMode::Row
        } else {
            crate::database::StorageMode::Columnar
        }
    }
}

/// Per-rule statistics of one run, attributable to a single program rule.
///
/// Invariants (checked by the test suite):
/// * `Σ body_evaluations` over all rules = [`RunStats::rule_evaluations`];
/// * `Σ tuples_derived` over all rules = [`RunStats::derived_tuples`]
///   (batch runs);
/// * `Σ components_added` over all rules =
///   [`RunStats::derived_components`].
#[derive(Clone, Debug, Default)]
pub struct RuleStats {
    /// Index of the rule in [`Program::rules`](crate::ast::Program).
    pub rule: usize,
    /// The rule's label, or `r<index>` when unlabeled.
    pub label: String,
    /// Head predicate name.
    pub head: String,
    /// Stratum the rule evaluates in.
    pub stratum: usize,
    /// Body evaluations (full or semi-naive variants).
    pub body_evaluations: usize,
    /// Tuples read from the delta database by semi-naive variants.
    pub delta_tuples: usize,
    /// `(binding, intervals)` results produced by body evaluations.
    pub derivations: usize,
    /// Head tuples this rule derived that did not previously exist.
    pub tuples_derived: usize,
    /// Interval components emitted before merging into the database.
    pub components_emitted: usize,
    /// Interval components that survived merge coalescing (net growth).
    pub components_added: usize,
    /// Wall-clock time spent evaluating this rule (including merges).
    pub wall: Duration,
}

/// Per-stratum statistics of one fixpoint run. A batch materialization has
/// one entry per stratum; a [`Session`] appends one entry per stratum per
/// advance.
#[derive(Clone, Debug, Default)]
pub struct StratumStats {
    /// Stratum index.
    pub stratum: usize,
    /// Fixpoint iterations.
    pub iterations: usize,
    /// Body evaluations within the stratum.
    pub rule_evaluations: usize,
    /// New tuples derived by the stratum.
    pub tuples_derived: usize,
    /// Net interval components added by the stratum.
    pub components_added: usize,
    /// Wall-clock time of the stratum fixpoint.
    pub wall: Duration,
}

/// Per-worker statistics of the stratum evaluation pool.
#[derive(Clone, Debug, Default)]
pub struct WorkerStats {
    /// Worker index (`0..threads`).
    pub worker: usize,
    /// Rule-evaluation tasks this worker executed.
    pub tasks: usize,
    /// Busy wall-clock time (task execution, excluding idle waits).
    pub busy: Duration,
}

/// Statistics of the session repair path (out-of-order corrections):
/// the `repairs` section of stats-json v6. A cold fallback still counts
/// as one attempt, so `incremental + fallbacks == attempted`.
#[derive(Clone, Debug, Default)]
pub struct RepairStats {
    /// Corrections that entered the repair path (retract, late submit,
    /// or a combined correct — one attempt each).
    pub attempted: u64,
    /// Attempts completed by in-place overdelete + re-derive.
    pub incremental: u64,
    /// Attempts completed by cold re-materialization from the base-fact
    /// log (budget trips, incremental errors, or repair disabled).
    pub fallbacks: u64,
    /// Fallbacks caused specifically by the overdelete cone exceeding
    /// [`ReasonerConfig::repair_budget`].
    pub budget_trips: u64,
    /// Tuples whose validity intersected a repair window, summed over
    /// all overdelete passes (the budgeted quantity).
    pub cone_tuples: u64,
    /// Interval components actually removed by overdeletion.
    pub overdeleted_components: u64,
}

/// What one overdelete pass did (the collection feeding [`RepairStats`]).
#[derive(Debug, Default)]
pub(crate) struct OverdeleteOutcome {
    /// Tuples whose validity intersected the repair window.
    pub cone_tuples: u64,
    /// Interval components removed from the materialization.
    pub removed_components: u64,
    /// The cone exceeded the budget; nothing was removed.
    pub budget_tripped: bool,
}

/// What the magic-sets demand transformation did for a goal-driven query
/// run (all defaults — `enabled: false`, mode `"off"` — for plain
/// materializations). Surfaced as the `magic` section of stats-json.
#[derive(Clone, Debug)]
pub struct MagicStats {
    /// `true` when the run evaluated a demand-guarded program.
    pub enabled: bool,
    /// `"off"` (plain materialization), `"magic"` (guarded rewrite),
    /// `"cone"` (cone-restricted, no guards), or `"full"` (a query served
    /// from an unrestricted materialization, e.g. `--no-magic`).
    pub mode: String,
    /// The guarded program failed validation or blew its budget and the
    /// run fell back to the unguarded cone.
    pub degraded: bool,
    /// Predicates in the query's dependency cone.
    pub cone_preds: u64,
    /// Rules in the cone, out of `program_rules` in the source program.
    pub cone_rules: u64,
    /// Rules in the source program.
    pub program_rules: u64,
    /// Cone rules that received a demand guard.
    pub rules_rewritten: u64,
    /// Magic demand-propagation rules evaluated.
    pub magic_rules: u64,
    /// Magic seed facts inserted.
    pub seeds: u64,
    /// Live tuples of non-magic predicates in the final database — the
    /// slice of the model this query actually paid for (compare with the
    /// same figure of a `"full"` run).
    pub demanded_tuples: u64,
    /// Live tuples of the magic predicates themselves (the demand
    /// bookkeeping overhead; never part of answers).
    pub magic_tuples: u64,
}

impl Default for MagicStats {
    fn default() -> MagicStats {
        MagicStats {
            enabled: false,
            mode: "off".to_string(),
            degraded: false,
            cone_preds: 0,
            cone_rules: 0,
            program_rules: 0,
            rules_rewritten: 0,
            magic_rules: 0,
            seeds: 0,
            demanded_tuples: 0,
            magic_tuples: 0,
        }
    }
}

/// Statistics of one materialization run.
#[derive(Clone, Debug, Default)]
pub struct RunStats {
    /// Fixpoint iterations per stratum.
    pub iterations: Vec<usize>,
    /// Number of rule applications (body evaluations).
    pub rule_evaluations: usize,
    /// Tuples in the result that were not in the input.
    pub derived_tuples: usize,
    /// Interval components in the result.
    pub total_components: usize,
    /// Net interval components added by rule derivations.
    pub derived_components: usize,
    /// Wall-clock time.
    pub elapsed: Duration,
    /// Positive-atom lookups answered through a secondary index probe.
    pub index_probes: u64,
    /// Tuples index probes skipped relative to full scans.
    pub index_scan_avoided: u64,
    /// Positive-atom lookups that scanned the whole relation.
    pub full_scans: u64,
    /// Tuples visited by full scans.
    pub scanned_tuples: u64,
    /// Candidate tuples visited by index probes (`scanned + probed +
    /// avoided` partitions every present-relation lookup).
    pub probed_tuples: u64,
    /// Positive-atom lookups that consulted the sorted-endpoint time index.
    pub time_index_probes: u64,
    /// Candidate tuples the time index ruled out before their interval sets
    /// were clipped against the read mask.
    pub interval_clips_avoided: u64,
    /// Secondary indexes carried over by database clones (session advances,
    /// snapshot copies) instead of being rebuilt from scratch.
    pub index_rebuilds_avoided: u64,
    /// Physical plans compiled (one per `(rule, delta-literal)` variant per
    /// stratum, plus re-plans).
    pub plans_built: u64,
    /// Plans rebuilt because input cardinalities crossed a magnitude
    /// boundary mid-fixpoint, or because adaptive feedback forced it.
    pub replans: u64,
    /// Replans forced by the adaptive feedback trigger alone — a sustained
    /// misestimate on a plan whose cardinality fingerprint never moved.
    /// A subset of `replans`; always 0 with adaptivity disabled.
    pub replans_triggered: u64,
    /// Built plans whose cost-based join order differs from the textual
    /// delta-first order.
    pub reorders_applied: u64,
    /// Summed planner estimates of bindings out of each executed plan's
    /// join pipeline (compare with `planner_actual_rows`).
    pub planner_estimated_rows: u64,
    /// Bindings actually produced by executed plans.
    pub planner_actual_rows: u64,
    /// Worker-pool dispatches that reused already-running workers.
    pub pool_reuses: u64,
    /// Worker-pool constructions (`<= strata` by the pool-lifecycle
    /// invariant; the old scoped path respawned per iteration).
    pub pool_respawns: u64,
    /// Final compiled plan per `(rule, delta-literal)` variant, with
    /// estimated vs. accumulated actual rows (what `--explain-plans`
    /// prints).
    pub plan_explains: Vec<PlanExplain>,
    /// Per-rule breakdown, indexed by rule position in the program.
    pub rules: Vec<RuleStats>,
    /// Per-stratum breakdown (one entry per stratum fixpoint executed).
    pub strata: Vec<StratumStats>,
    /// Per-worker breakdown of the evaluation pool (one entry per worker,
    /// accumulated across strata and advances).
    pub workers: Vec<WorkerStats>,
    /// Session repair-path breakdown (all zeros for batch runs).
    pub repairs: RepairStats,
    /// Relation-storage breakdown (interning, arena, clone traffic).
    pub storage: StorageStats,
    /// Goal-driven (magic-sets) query breakdown (defaults for plain runs).
    pub magic: MagicStats,
}

/// Relation-storage statistics: what the columnar layout interns and
/// allocates. The interner and symbol counts are process-global (interning
/// is shared across databases); the byte and clone figures are snapshots
/// taken when the run's stats were captured.
#[derive(Clone, Debug, Default)]
pub struct StorageStats {
    /// Storage layout of the run (`"columnar"` or `"row"`).
    pub mode: String,
    /// Distinct predicate/constant/variable names interned process-wide.
    pub interned_symbols: usize,
    /// Distinct constant values interned process-wide (columnar ids).
    pub interned_values: usize,
    /// Bytes held by the result database's interval storage (arena slabs
    /// for columnar relations, per-tuple `IntervalSet`s for row ones).
    pub interval_bytes: usize,
    /// Bytes held by the result database's value storage (`u32` columns
    /// for columnar relations, boxed tuples for row ones).
    pub value_bytes: usize,
    /// Arena slabs released by `Relation::remove` emptying a tuple
    /// (result database, cumulative over its relations' lifetimes).
    pub arena_slabs_freed: u64,
    /// Freed arena slabs later reused by another tuple's intervals.
    pub arena_slabs_reused: u64,
    /// Flat column vectors copied by database clones, process-wide — the
    /// columnar snapshot cost (row-store clones copy per-tuple boxes
    /// instead and don't count here).
    pub column_clones: u64,
}

/// Actual-vs-estimated row accounting for one executed plan variant: the
/// observability half of planner runtime feedback. A later pass can feed
/// `error_factor` back into the planner's `distinct` estimates; until
/// then it surfaces as `planner.misestimates` in `--stats-json` and the
/// "top misestimates" block of `--explain-plans`.
#[derive(Clone, Debug, PartialEq)]
pub struct PlanFeedback {
    /// Rule index in the program.
    pub rule: usize,
    /// Rule label (or `r{idx}`).
    pub label: String,
    /// Delta-restricted literal of the variant, if any.
    pub delta_literal: Option<usize>,
    /// Times the plan executed.
    pub executions: u64,
    /// Planner-estimated bindings out of the join pipeline per execution.
    pub est_rows: u64,
    /// Accumulated observed bindings across executions.
    pub actual_rows: u64,
    /// `actual_rows / executions` (0 when never executed).
    pub avg_actual_rows: f64,
    /// Symmetric misestimation ratio `max(f, 1/f)` with
    /// `f = (avg_actual + 1) / (est + 1)`; `1.0` is a perfect estimate,
    /// and over- and under-estimates of the same magnitude score equally.
    pub error_factor: f64,
}

impl RunStats {
    /// Per-plan actual-vs-estimated feedback, worst misestimate first
    /// (ties broken by rule index then delta literal, so the order is
    /// deterministic across runs).
    pub fn plan_feedback(&self) -> Vec<PlanFeedback> {
        let mut out: Vec<PlanFeedback> = self
            .plan_explains
            .iter()
            .filter(|p| p.executions > 0)
            .map(|p| {
                let avg = p.actual_rows as f64 / p.executions as f64;
                let f = (avg + 1.0) / (p.est_rows as f64 + 1.0);
                PlanFeedback {
                    rule: p.rule,
                    label: p.label.clone(),
                    delta_literal: p.delta_literal,
                    executions: p.executions,
                    est_rows: p.est_rows,
                    actual_rows: p.actual_rows,
                    avg_actual_rows: avg,
                    error_factor: f.max(1.0 / f),
                }
            })
            .collect();
        out.sort_by(|a, b| {
            b.error_factor
                .partial_cmp(&a.error_factor)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.rule.cmp(&b.rule))
                .then(a.delta_literal.cmp(&b.delta_literal))
        });
        out
    }
}

impl RunStats {
    /// The stats as a JSON object with `totals`, `strata`, and `rules`
    /// sections — the stable payload of `--stats-json` reports (see
    /// `docs/OBSERVABILITY.md` for the schema).
    pub fn to_json(&self) -> Json {
        let totals = Json::from_pairs([
            ("rule_evaluations", Json::from(self.rule_evaluations)),
            ("derived_tuples", Json::from(self.derived_tuples)),
            ("total_components", Json::from(self.total_components)),
            ("derived_components", Json::from(self.derived_components)),
            (
                "iterations",
                Json::Arr(self.iterations.iter().map(|&i| Json::from(i)).collect()),
            ),
            ("elapsed_us", Json::from(self.elapsed.as_micros() as u64)),
            ("index_probes", Json::from(self.index_probes)),
            ("index_scan_avoided", Json::from(self.index_scan_avoided)),
            ("full_scans", Json::from(self.full_scans)),
            ("scanned_tuples", Json::from(self.scanned_tuples)),
            ("probed_tuples", Json::from(self.probed_tuples)),
            ("time_index_probes", Json::from(self.time_index_probes)),
            (
                "interval_clips_avoided",
                Json::from(self.interval_clips_avoided),
            ),
            (
                "index_rebuilds_avoided",
                Json::from(self.index_rebuilds_avoided),
            ),
        ]);
        let strata = Json::Arr(
            self.strata
                .iter()
                .map(|s| {
                    Json::from_pairs([
                        ("stratum", Json::from(s.stratum)),
                        ("iterations", Json::from(s.iterations)),
                        ("rule_evaluations", Json::from(s.rule_evaluations)),
                        ("tuples_derived", Json::from(s.tuples_derived)),
                        ("components_added", Json::from(s.components_added)),
                        ("wall_us", Json::from(s.wall.as_micros() as u64)),
                    ])
                })
                .collect(),
        );
        let rules = Json::Arr(
            self.rules
                .iter()
                .map(|r| {
                    Json::from_pairs([
                        ("rule", Json::from(r.rule)),
                        ("label", Json::from(r.label.as_str())),
                        ("head", Json::from(r.head.as_str())),
                        ("stratum", Json::from(r.stratum)),
                        ("body_evaluations", Json::from(r.body_evaluations)),
                        ("delta_tuples", Json::from(r.delta_tuples)),
                        ("derivations", Json::from(r.derivations)),
                        ("tuples_derived", Json::from(r.tuples_derived)),
                        ("components_emitted", Json::from(r.components_emitted)),
                        ("components_added", Json::from(r.components_added)),
                        ("wall_us", Json::from(r.wall.as_micros() as u64)),
                    ])
                })
                .collect(),
        );
        let workers = Json::Arr(
            self.workers
                .iter()
                .map(|w| {
                    Json::from_pairs([
                        ("worker", Json::from(w.worker)),
                        ("tasks", Json::from(w.tasks)),
                        ("busy_us", Json::from(w.busy.as_micros() as u64)),
                    ])
                })
                .collect(),
        );
        let plans = Json::Arr(
            self.plan_explains
                .iter()
                .map(|p| {
                    Json::from_pairs([
                        ("rule", Json::from(p.rule)),
                        ("label", Json::from(p.label.as_str())),
                        // `-1` = no delta literal (full evaluation); keeps
                        // the field's JSON type stable for schema checks.
                        (
                            "delta_literal",
                            Json::from(p.delta_literal.map_or(-1i64, |d| d as i64)),
                        ),
                        ("reordered", Json::from(p.reordered)),
                        ("estimated_rows", Json::from(p.est_rows)),
                        ("executions", Json::from(p.executions)),
                        ("actual_rows", Json::from(p.actual_rows)),
                        (
                            "corrections",
                            Json::Arr(
                                p.corrections
                                    .iter()
                                    .map(|&(lit, c)| {
                                        Json::from_pairs([
                                            ("literal", Json::from(lit)),
                                            ("factor", Json::from(c)),
                                        ])
                                    })
                                    .collect(),
                            ),
                        ),
                        (
                            "steps",
                            Json::Arr(
                                p.steps
                                    .iter()
                                    .map(|s| {
                                        Json::from_pairs([
                                            ("desc", Json::from(s.desc.as_str())),
                                            ("access_path", Json::from(s.access)),
                                            ("estimated_rows", Json::from(s.est_rows)),
                                            ("actual_rows", Json::from(s.actual_rows)),
                                        ])
                                    })
                                    .collect(),
                            ),
                        ),
                    ])
                })
                .collect(),
        );
        let misestimates = Json::Arr(
            self.plan_feedback()
                .into_iter()
                .map(|f| {
                    Json::from_pairs([
                        ("rule", Json::from(f.rule)),
                        ("label", Json::from(f.label.as_str())),
                        (
                            "delta_literal",
                            Json::from(f.delta_literal.map_or(-1i64, |d| d as i64)),
                        ),
                        ("executions", Json::from(f.executions)),
                        ("estimated_rows", Json::from(f.est_rows)),
                        ("actual_rows", Json::from(f.actual_rows)),
                        ("avg_actual_rows", Json::from(f.avg_actual_rows)),
                        ("error_factor", Json::from(f.error_factor)),
                    ])
                })
                .collect(),
        );
        let planner = Json::from_pairs([
            ("plans_built", Json::from(self.plans_built)),
            ("replans", Json::from(self.replans)),
            ("replans_triggered", Json::from(self.replans_triggered)),
            ("reorders_applied", Json::from(self.reorders_applied)),
            ("estimated_rows", Json::from(self.planner_estimated_rows)),
            ("actual_rows", Json::from(self.planner_actual_rows)),
            ("misestimates", misestimates),
            ("plans", plans),
        ]);
        let pool = Json::from_pairs([
            ("reuses", Json::from(self.pool_reuses)),
            ("respawns", Json::from(self.pool_respawns)),
        ]);
        let repairs = Json::from_pairs([
            ("attempted", Json::from(self.repairs.attempted)),
            ("incremental", Json::from(self.repairs.incremental)),
            ("fallbacks", Json::from(self.repairs.fallbacks)),
            ("budget_trips", Json::from(self.repairs.budget_trips)),
            ("cone_tuples", Json::from(self.repairs.cone_tuples)),
            (
                "overdeleted_components",
                Json::from(self.repairs.overdeleted_components),
            ),
        ]);
        let storage = Json::from_pairs([
            ("mode", Json::from(self.storage.mode.as_str())),
            (
                "interned_symbols",
                Json::from(self.storage.interned_symbols),
            ),
            ("interned_values", Json::from(self.storage.interned_values)),
            ("interval_bytes", Json::from(self.storage.interval_bytes)),
            ("value_bytes", Json::from(self.storage.value_bytes)),
            (
                "arena_slabs_freed",
                Json::from(self.storage.arena_slabs_freed),
            ),
            (
                "arena_slabs_reused",
                Json::from(self.storage.arena_slabs_reused),
            ),
            ("column_clones", Json::from(self.storage.column_clones)),
        ]);
        let magic = Json::from_pairs([
            ("enabled", Json::from(self.magic.enabled)),
            ("mode", Json::from(self.magic.mode.as_str())),
            ("degraded", Json::from(self.magic.degraded)),
            ("cone_predicates", Json::from(self.magic.cone_preds)),
            ("cone_rules", Json::from(self.magic.cone_rules)),
            ("program_rules", Json::from(self.magic.program_rules)),
            ("rules_rewritten", Json::from(self.magic.rules_rewritten)),
            ("magic_rules", Json::from(self.magic.magic_rules)),
            ("seeds", Json::from(self.magic.seeds)),
            ("demanded_tuples", Json::from(self.magic.demanded_tuples)),
            ("magic_tuples", Json::from(self.magic.magic_tuples)),
        ]);
        Json::from_pairs([
            ("totals", totals),
            ("strata", strata),
            ("rules", rules),
            ("workers", workers),
            ("planner", planner),
            ("pool", pool),
            ("repairs", repairs),
            ("storage", storage),
            ("magic", magic),
        ])
    }
}

/// The result of a goal-driven point query ([`Reasoner::query`]).
pub struct QueryOutcome {
    /// Matching tuples with their validity intervals, clipped to the
    /// query window and sorted by tuple (deterministic across thread
    /// counts and evaluation modes).
    pub answers: Vec<(Tuple, IntervalSet)>,
    /// Statistics of the inner sub-program materialization, with the
    /// `magic` section describing the rewrite.
    pub stats: RunStats,
}

/// The result of materializing a program over a database.
pub struct Materialization {
    /// Input facts plus everything entailed (within the horizon).
    pub database: Database,
    /// Run statistics.
    pub stats: RunStats,
    /// Provenance (populated when [`ReasonerConfig::provenance`] is on).
    pub provenance: Option<ProvenanceLog>,
}

impl Materialization {
    /// Explains why `pred(args)` holds at time `t` as a derivation tree.
    /// Requires provenance recording; returns `None` when the fact does not
    /// hold at `t` or provenance is off.
    pub fn explain(
        &self,
        program: &Program,
        pred: &str,
        args: &[Value],
        t: i64,
    ) -> Option<Explanation> {
        let log = self.provenance.as_ref()?;
        log.explain(program, &self.database, Symbol::new(pred), args, t)
    }
}

/// A compiled, validated DatalogMTL reasoner.
pub struct Reasoner {
    program: Program,
    strat: Stratification,
    config: ReasonerConfig,
    /// Persistent evaluation worker pool, spawned lazily on the first
    /// multi-threaded dispatch and reused across fixpoint iterations,
    /// strata, and session advances.
    pool: OnceLock<WorkerPool>,
    /// Learned misestimate correction factors, keyed by
    /// `(rule index, body literal)`. Harvested when runtime feedback
    /// forces a replan and blended into that rule's next cost estimates;
    /// kept on the reasoner (not the stratum) so corrections survive
    /// session advances and keep compounding. A `BTreeMap` so the slice
    /// handed to the planner is deterministically ordered.
    corrections: Mutex<BTreeMap<(usize, usize), f64>>,
    /// Magic (demand) predicates of a goal-driven sub-program, set only on
    /// the inner reasoner built by [`Reasoner::query`]. The planner floors
    /// their cardinality estimates: demand relations start empty (the seed
    /// lands mid-plan, derived demand propagates per iteration), and a
    /// zero estimate would price the guard as producing nothing.
    magic_preds: HashSet<Symbol>,
}

/// How a rule participates in its stratum's fixpoint (distinct from the
/// physical [`plan::RulePlan`], which fixes join order and access paths
/// for one body evaluation).
enum FixpointMode {
    /// No body dependency on the current stratum: runs only on iteration 0.
    Once,
    /// Every current-stratum dependency sits in a delta-eligible literal:
    /// these literal indices drive semi-naive variants.
    SemiNaive(Vec<usize>),
    /// Some current-stratum dependency is not delta-eligible (non-punctual
    /// box, since/until): full re-evaluation each iteration.
    Full,
}

impl Reasoner {
    /// Validates (safety, arity, stratification) and compiles a program.
    pub fn new(program: Program, config: ReasonerConfig) -> Result<Reasoner> {
        check_program(&program)?;
        let strat = Stratification::compute(&program)?;
        Ok(Reasoner {
            program,
            strat,
            config,
            pool: OnceLock::new(),
            corrections: Mutex::new(BTreeMap::new()),
            magic_preds: HashSet::new(),
        })
    }

    /// The persistent worker pool, when multi-threaded evaluation is
    /// configured (spawned on first use, then reused for the lifetime of
    /// the reasoner — including every `Session::advance_to`).
    fn worker_pool(&self) -> Option<&WorkerPool> {
        if self.config.threads <= 1 {
            return None;
        }
        Some(
            self.pool
                .get_or_init(|| WorkerPool::new(self.config.threads)),
        )
    }

    /// The validated program.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// The stratification.
    pub fn stratification(&self) -> &Stratification {
        &self.strat
    }

    /// The active configuration.
    pub fn config(&self) -> &ReasonerConfig {
        &self.config
    }

    /// Materializes all consequences of the program over `input`.
    pub fn materialize(&self, input: &Database) -> Result<Materialization> {
        let _mat_span = self.config.profiler.as_ref().map(|p| p.span("materialize"));
        let start = Instant::now();
        // Same-mode inputs clone structurally (columnar: flat column
        // memcpys plus an index patch); a mode mismatch re-loads.
        let mut total = input.to_mode(self.config.storage_mode());
        let mut provenance = self.config.provenance.then(ProvenanceLog::default);
        let mut stats = RunStats::default();
        // Cloning preserves already-built secondary indexes: every index the
        // input carries over is one the fixpoint loop does not rebuild.
        stats.index_rebuilds_avoided += total.built_index_count() as u64;
        chronolog_obs::Registry::global()
            .counter("engine.index_rebuilds_avoided")
            .add(total.built_index_count() as u64);
        self.init_rule_stats(&mut stats);
        let input_tuples = input.tuple_count();
        if let Some(tracer) = &self.config.tracer {
            tracer.emit(
                "materialize_start",
                vec![
                    ("rules", Json::from(self.program.rules.len())),
                    ("strata", Json::from(self.strat.rules_by_stratum.len())),
                    ("input_tuples", Json::from(input_tuples)),
                ],
            );
        }

        for (stratum, rule_indices) in self.strat.rules_by_stratum.iter().enumerate() {
            let iterations = self.run_stratum(
                stratum,
                rule_indices,
                &mut total,
                &mut provenance,
                &mut stats,
                self.config.horizon,
                None,
                None,
            )?;
            stats.iterations.push(iterations);
        }

        stats.derived_tuples = total.tuple_count().saturating_sub(input_tuples);
        stats.total_components = total.component_count();
        stats.elapsed = start.elapsed();
        capture_storage_stats(&total, &mut stats);
        if let Some(tracer) = &self.config.tracer {
            tracer.emit(
                "materialize_end",
                vec![
                    ("derived_tuples", Json::from(stats.derived_tuples)),
                    ("total_components", Json::from(stats.total_components)),
                    ("rule_evaluations", Json::from(stats.rule_evaluations)),
                    ("elapsed_us", Json::from(stats.elapsed.as_micros() as u64)),
                ],
            );
        }
        Ok(Materialization {
            database: total,
            stats,
            provenance,
        })
    }

    /// Answers a point query goal-driven: the program is magic-sets
    /// rewritten to the query's dependency cone with demand guards (see
    /// [`crate::rewrite`]), the rewritten sub-program is materialized
    /// against a private snapshot of `input` (which is never mutated, so
    /// concurrent full materializations and sessions are undisturbed),
    /// and the answers are read back clipped to the query window.
    ///
    /// Answers are byte-identical to full materialization followed by
    /// [`Database::query`] (pinned by the `magic_equivalence` suite);
    /// only the `demanded_tuples` slice of the model is computed. When
    /// the guarded program fails validation (magic can break
    /// stratification in corner cases) or exceeds the iteration budget,
    /// the query degrades to unguarded cone-restricted evaluation —
    /// `stats.magic` records which mode ran.
    pub fn query(&self, input: &Database, query: &Query) -> Result<QueryOutcome> {
        self.query_within(input, query, self.config.horizon)
    }

    /// [`Reasoner::query`] with an explicit horizon override (the session
    /// path clips to its watermark).
    pub(crate) fn query_within(
        &self,
        input: &Database,
        query: &Query,
        horizon: Interval,
    ) -> Result<QueryOutcome> {
        let reserved: Vec<Symbol> = input.predicates().collect();
        let rw = rewrite::rewrite(&self.program, query, &reserved);
        if rw.is_guarded() {
            match self.run_rewritten(input, query, &rw, horizon, true, false) {
                Ok(outcome) => return Ok(outcome),
                // Guard edges can close a cycle through negation
                // (NotStratifiable) and unbounded backward demand spread
                // can blow the iteration budget where the forward
                // fixpoint converged; both degrade to the unguarded cone.
                Err(Error::NotStratifiable(_) | Error::Unsafe(_) | Error::BudgetExceeded(_)) => {}
                Err(e) => return Err(e),
            }
            return self.run_rewritten(input, query, &rw, horizon, false, true);
        }
        self.run_rewritten(input, query, &rw, horizon, false, false)
    }

    /// Evaluates either the guarded program plus seeds (`magic`) or the
    /// unguarded cone program against a snapshot of `input`.
    fn run_rewritten(
        &self,
        input: &Database,
        query: &Query,
        rw: &rewrite::MagicRewrite,
        horizon: Interval,
        magic: bool,
        degraded: bool,
    ) -> Result<QueryOutcome> {
        let mut config = self.config.clone();
        config.horizon = horizon;
        let program = if magic {
            rw.program.clone()
        } else {
            rw.cone_program.clone()
        };
        let mut inner = Reasoner::new(program, config)?;
        inner.magic_preds = rw.magic_preds.clone();
        let mut db = input.to_mode(self.config.storage_mode());
        let mut seeds_inserted = 0u64;
        if magic {
            for seed in &rw.seeds {
                if let Some(iv) = seed.interval.intersect(&horizon) {
                    db.insert(seed.pred, &seed.args, iv)?;
                    seeds_inserted += 1;
                }
            }
        }
        let mat = inner.materialize(&db)?;
        let mut answers = mat.database.query(&query.atom, query.window.as_ref());
        answers.sort_by(|a, b| a.0.cmp(&b.0));
        let mut stats = mat.stats;
        let mut demanded = 0u64;
        let mut magic_tuples = 0u64;
        for pred in mat.database.predicates() {
            let n = mat.database.relation(pred).map_or(0, |r| r.live_len()) as u64;
            if rw.magic_preds.contains(&pred) {
                magic_tuples += n;
            } else {
                demanded += n;
            }
        }
        stats.magic = MagicStats {
            enabled: magic,
            mode: if magic { "magic" } else { "cone" }.to_string(),
            degraded,
            cone_preds: rw.counters.cone_preds as u64,
            cone_rules: rw.counters.cone_rules as u64,
            program_rules: rw.counters.program_rules as u64,
            rules_rewritten: if magic {
                rw.counters.guarded_rules as u64
            } else {
                0
            },
            magic_rules: if magic {
                rw.counters.magic_rules as u64
            } else {
                0
            },
            seeds: seeds_inserted,
            demanded_tuples: demanded,
            magic_tuples,
        };
        Ok(QueryOutcome { answers, stats })
    }

    /// A deterministic report of what the magic rewrite does for `query`
    /// (cone, adornments, guarded and magic rules, seeds) — the body of
    /// the CLI's `--explain-query` view. Purely static: nothing is
    /// evaluated.
    pub fn explain_query(&self, input: &Database, query: &Query) -> String {
        let reserved: Vec<Symbol> = input.predicates().collect();
        let rw = rewrite::rewrite(&self.program, query, &reserved);
        let mut out = rw.explain(query);
        if rw.is_guarded() {
            if let Err(e) = Reasoner::new(rw.program.clone(), self.config.clone()) {
                out.push_str(&format!(
                    "note: guarded program fails validation ({e}); \
                     this query degrades to cone-only evaluation\n"
                ));
            }
        }
        out
    }

    /// Sizes `stats.rules` to the program, filling the static columns
    /// (index, label, head predicate, stratum). Idempotent, so a [`Session`]
    /// can call it once and accumulate across advances.
    fn init_rule_stats(&self, stats: &mut RunStats) {
        if !stats.rules.is_empty() {
            return;
        }
        stats.rules = self
            .program
            .rules
            .iter()
            .enumerate()
            .map(|(i, rule)| RuleStats {
                rule: i,
                label: rule.label.clone().unwrap_or_else(|| format!("r{i}")),
                head: rule.head.atom.pred.as_str(),
                ..RuleStats::default()
            })
            .collect();
        for (stratum, indices) in self.strat.rules_by_stratum.iter().enumerate() {
            for &i in indices {
                stats.rules[i].stratum = stratum;
            }
        }
    }

    /// Predicates whose derivations can depend, directly or transitively,
    /// on any of `changed` — the predicate dimension of a repair cone.
    /// Includes the changed predicates themselves: a corrected base
    /// predicate can carry derived intervals of its own in the
    /// materialization (e.g. when it also appears in a rule head).
    pub(crate) fn affected_predicates(&self, changed: &[Symbol]) -> HashSet<Symbol> {
        let graph = DependencyGraph::build(&self.program);
        let mut affected: HashSet<Symbol> = changed.iter().copied().collect();
        let mut frontier: Vec<Symbol> = changed.to_vec();
        while let Some(p) = frontier.pop() {
            for (from, to, _) in &graph.edges {
                if *from == p && affected.insert(*to) {
                    frontier.push(*to);
                }
            }
        }
        affected
    }

    /// DRed-style overdeletion: within `window`, removes from `total`
    /// every affected tuple's validity except the parts backed by a
    /// surviving base fact. Over-approximate by design — anything still
    /// derivable is restored by the re-derivation pass, seeded from the
    /// surviving facts around the window.
    ///
    /// The budget is checked during the (read-only) collection phase, so
    /// a tripped pass leaves `total` untouched and the caller can fall
    /// back to cold re-materialization without repairing the repair.
    pub(crate) fn overdelete(
        &self,
        total: &mut Database,
        base: &Database,
        affected: &HashSet<Symbol>,
        window: Interval,
        budget: u64,
    ) -> OverdeleteOutcome {
        let mut outcome = OverdeleteOutcome::default();
        // Sorted predicate order keeps the pass deterministic (HashSet
        // iteration is not).
        let mut preds: Vec<Symbol> = affected.iter().copied().collect();
        preds.sort();
        let mut dead: Vec<(Symbol, Tuple, IntervalSet)> = Vec::new();
        for &pred in &preds {
            let Some(rel) = total.relation(pred) else {
                continue;
            };
            for (tuple, ivs) in rel.iter() {
                let clipped = IntervalSet::clip_components(ivs, &window);
                if clipped.is_empty() {
                    continue;
                }
                outcome.cone_tuples += 1;
                if outcome.cone_tuples > budget {
                    outcome.budget_tripped = true;
                    return outcome;
                }
                let owned = tuple.to_vec();
                let surviving = base.intervals(pred, &owned);
                let doomed = clipped.difference(&surviving);
                if !doomed.is_empty() {
                    dead.push((pred, owned.into_boxed_slice(), doomed));
                }
            }
        }
        for (pred, tuple, doomed) in dead {
            let removed = total.remove(pred, &tuple, &doomed);
            outcome.removed_components += removed.components().len() as u64;
        }
        outcome
    }

    /// Re-derivation driver shared by the session's watermark advance and
    /// the repair path: runs every stratum over `horizon`, seeding
    /// iteration 0 with `seed` (semi-naive against the delta) and folding
    /// each stratum's additions back into the seed so later strata see
    /// them. Appends per-stratum iteration counts to `stats.iterations`.
    pub(crate) fn rederive(
        &self,
        total: &mut Database,
        seed: &mut Database,
        provenance: &mut Option<ProvenanceLog>,
        stats: &mut RunStats,
        horizon: Interval,
    ) -> Result<()> {
        for (stratum, rule_indices) in self.strat.rules_by_stratum.iter().enumerate() {
            let mut collected = Database::with_mode(self.config.storage_mode());
            let iterations = self.run_stratum(
                stratum,
                rule_indices,
                total,
                provenance,
                stats,
                horizon,
                Some(seed),
                Some(&mut collected),
            )?;
            stats.iterations.push(iterations);
            for (pred, tuple, ivs) in collected.iter() {
                seed.merge(
                    pred,
                    &tuple.to_vec(),
                    &IntervalSet::from_sorted(ivs.to_vec()),
                )?;
            }
        }
        Ok(())
    }

    /// Cold re-derivation driver for the session fallback: runs every
    /// stratum over `horizon` with no seed — a full batch fixpoint
    /// against `total` — appending per-stratum iteration counts.
    pub(crate) fn rematerialize(
        &self,
        total: &mut Database,
        provenance: &mut Option<ProvenanceLog>,
        stats: &mut RunStats,
        horizon: Interval,
    ) -> Result<()> {
        for (stratum, rule_indices) in self.strat.rules_by_stratum.iter().enumerate() {
            let iterations = self.run_stratum(
                stratum,
                rule_indices,
                total,
                provenance,
                stats,
                horizon,
                None,
                None,
            )?;
            stats.iterations.push(iterations);
        }
        Ok(())
    }

    /// Runs one stratum to fixpoint.
    ///
    /// * `horizon` — clipping window (the session engine grows it).
    /// * `seed` — incremental mode: iteration 0 evaluates semi-naive
    ///   variants against this delta (covering *all* predicates) instead of
    ///   re-evaluating every rule in full; rules with a positive literal
    ///   that is not delta-eligible fall back to a full evaluation.
    /// * `collected` — when present, every fact added by this stratum is
    ///   also merged here (the session's cross-stratum seed accumulator).
    #[allow(clippy::too_many_arguments)]
    fn run_stratum(
        &self,
        stratum: usize,
        rule_indices: &[usize],
        total: &mut Database,
        provenance: &mut Option<ProvenanceLog>,
        stats: &mut RunStats,
        horizon: Interval,
        seed: Option<&Database>,
        mut collected: Option<&mut Database>,
    ) -> Result<usize> {
        // Opened before the wall-clock so the span always contains the
        // measured stratum wall time (span dur ≥ `StratumStats::wall`).
        let mut stratum_span = self
            .config
            .profiler
            .as_ref()
            .map(|p| p.span(format!("stratum {stratum}")));
        let stratum_start = Instant::now();
        let evals_before = stats.rule_evaluations;
        let mut stratum_tuples = 0usize;
        let mut stratum_components = 0usize;
        let threads = self.config.threads.max(1);
        let counters = JoinCounters::default();
        // One WorkerStats slot per configured worker, reused across strata
        // (and across a session's advances).
        if stats.workers.len() < threads {
            for w in stats.workers.len()..threads {
                stats.workers.push(WorkerStats {
                    worker: w,
                    ..WorkerStats::default()
                });
            }
        }
        let current_preds: HashSet<Symbol> = rule_indices
            .iter()
            .map(|&i| self.program.rules[i].head.atom.pred)
            .collect();

        // --- Aggregate rules: once, inputs are strictly lower strata. ---
        let mut agg_groups: Vec<(Symbol, Vec<usize>)> = Vec::new();
        let mut normal: Vec<usize> = Vec::new();
        for &i in rule_indices {
            let rule = &self.program.rules[i];
            if rule.head.aggregate.is_some() {
                match agg_groups
                    .iter_mut()
                    .find(|(p, _)| *p == rule.head.atom.pred)
                {
                    Some((_, v)) => v.push(i),
                    None => agg_groups.push((rule.head.atom.pred, vec![i])),
                }
            } else {
                normal.push(i);
            }
        }
        for (pred, indices) in &agg_groups {
            let group_start = Instant::now();
            let rules: Vec<&Rule> = indices.iter().map(|&i| &self.program.rules[i]).collect();
            let ctx = EvalCtx {
                total,
                delta: None,
                horizon,
                index_joins: self.config.index_joins,
                time_index: self.config.time_index,
                threads: 1,
                pool: None,
                counters: &counters,
                profiler: self.config.profiler.as_ref(),
            };
            let derived = aggregate::eval_aggregate_rules(&rules, &ctx)?;
            stats.rule_evaluations += indices.len();
            for &i in indices.iter() {
                stats.rules[i].body_evaluations += 1;
            }
            // Derivations of a merged aggregate group are attributed to its
            // first rule — the group shares one head predicate.
            let lead = indices[0];
            stats.rules[lead].derivations += derived.len();
            for (tuple, interval) in derived {
                let mut ivs = IntervalSet::from_interval(interval);
                for op in &rules[0].head.ops {
                    ivs = apply_head_op(op, &ivs)?;
                }
                let ivs = ivs.intersect_interval(&horizon);
                if ivs.is_empty() {
                    continue;
                }
                stats.rules[lead].components_emitted += ivs.components().len();
                let is_new = total
                    .relation(*pred)
                    .and_then(|r| r.components_of(&tuple))
                    .is_none_or(|c| c.is_empty());
                let added = total.merge(*pred, &tuple, &ivs)?;
                if !added.is_empty() {
                    if is_new {
                        stats.rules[lead].tuples_derived += 1;
                        stratum_tuples += 1;
                    }
                    stats.rules[lead].components_added += added.components().len();
                    stratum_components += added.components().len();
                    if let Some(acc) = collected.as_deref_mut() {
                        acc.merge(*pred, &tuple, &added)?;
                    }
                    if let Some(log) = provenance {
                        log.record(lead, *pred, tuple, added, Vec::new());
                    }
                }
            }
            stats.rules[lead].wall += group_start.elapsed();
        }

        // --- Fixpoint participation modes for the normal rules. ---
        let modes: Vec<(usize, FixpointMode)> = normal
            .iter()
            .map(|&i| {
                let rule = &self.program.rules[i];
                let mut dep_literals = Vec::new();
                let mut blocked = false;
                let mut has_dep = false;
                for (li, lit) in rule.body.iter().enumerate() {
                    let mentions_current = match lit {
                        crate::ast::Literal::Pos(m) | crate::ast::Literal::Neg(m) => {
                            m.atoms().iter().any(|a| current_preds.contains(&a.pred))
                        }
                        crate::ast::Literal::Constraint(..) => false,
                    };
                    if !mentions_current {
                        continue;
                    }
                    has_dep = true;
                    match delta_eligible(lit) {
                        Some(_) => dep_literals.push(li),
                        None => blocked = true,
                    }
                }
                let mode = if !has_dep {
                    FixpointMode::Once
                } else if blocked || !self.config.semi_naive {
                    FixpointMode::Full
                } else {
                    FixpointMode::SemiNaive(dep_literals)
                };
                (i, mode)
            })
            .collect();

        // --- Fixpoint. ---
        // Physical plans, cached per `(rule, delta-literal)` variant for the
        // stratum's lifetime and rebuilt only when a body relation's size
        // crosses a power-of-two boundary (the fingerprint check below).
        let plan_cfg = plan::PlanConfig {
            cost_based: self.config.cost_based_reorder,
            index_joins: self.config.index_joins,
            time_index: self.config.time_index,
            // Fixpoint plans estimate against live cardinalities, so their
            // compiled access paths bind the executor (with the runtime
            // degrade guard in `eval_rel`).
            authoritative: true,
        };
        let mut plan_cache: BTreeMap<(usize, Option<usize>), plan::RulePlan> = BTreeMap::new();
        let mut plans_built = 0u64;
        let mut replans = 0u64;
        let mut replans_triggered = 0u64;
        let mut reorders_applied = 0u64;
        let mut planner_estimated_rows = 0u64;
        let mut planner_actual_rows = 0u64;
        let mut prev_delta = Database::with_mode(self.config.storage_mode());
        let mut iteration = 0usize;
        // Adaptive parallelism gate: an iteration only pays for worker
        // threads when the *previous* iteration's evaluation was expensive
        // enough to amortize the spawns. Cheap fixpoint tails (the common
        // case: hundreds of sub-millisecond delta iterations) stay on the
        // main thread. The gate never changes results — merge order is
        // fixed either way — only where the work runs.
        let mut last_eval_wall = Duration::ZERO;
        loop {
            // One span per fixpoint iteration. The name is not indexed so
            // folded stacks collapse all iterations into one frame; the
            // index travels as a counter instead.
            let mut iter_span = self.config.profiler.as_ref().map(|p| {
                let mut s = p.span("iteration");
                s.add("iteration", iteration as u64);
                s
            });
            if iteration >= self.config.max_iterations {
                return Err(Error::BudgetExceeded(format!(
                    "stratum exceeded {} iterations (unbounded temporal recursion? \
                     set a bounded horizon)",
                    self.config.max_iterations
                )));
            }
            // component_count walks the whole database; sample it.
            if iteration.is_multiple_of(64) && total.component_count() > self.config.max_components
            {
                return Err(Error::BudgetExceeded(format!(
                    "materialization exceeded {} interval components",
                    self.config.max_components
                )));
            }
            let mut next_delta = Database::with_mode(self.config.storage_mode());
            let mut grew = false;

            // Which evaluations to run this iteration, flattened into a
            // fixed-order `(rule, delta literal)` task list. The task order
            // is also the merge order, so output, stats, and provenance are
            // bit-identical for every thread count.
            let mut tasks: Vec<(usize, Option<usize>)> = Vec::new();
            for (rule_idx, mode) in &modes {
                let rule = &self.program.rules[*rule_idx];
                let variants: Vec<Option<usize>> = match (mode, iteration, seed) {
                    // Incremental iteration 0: semi-naive against the seed
                    // when every positive literal supports it.
                    (_, 0, Some(_)) => {
                        let pos: Vec<usize> = rule
                            .body
                            .iter()
                            .enumerate()
                            .filter(|(_, l)| matches!(l, crate::ast::Literal::Pos(_)))
                            .map(|(i, _)| i)
                            .collect();
                        if pos.iter().all(|&i| delta_eligible(&rule.body[i]).is_some()) {
                            pos.into_iter().map(Some).collect()
                        } else {
                            vec![None]
                        }
                    }
                    (FixpointMode::Once, 0, None) => vec![None],
                    (FixpointMode::Once, _, _) => continue,
                    (FixpointMode::Full, _, _) => vec![None],
                    (FixpointMode::SemiNaive(_), 0, None) => vec![None],
                    (FixpointMode::SemiNaive(lits), _, _) => {
                        lits.iter().map(|&l| Some(l)).collect()
                    }
                };
                tasks.extend(variants.into_iter().map(|m| (*rule_idx, m)));
            }
            let delta_base: &Database = if iteration == 0 {
                seed.unwrap_or(&prev_delta)
            } else {
                &prev_delta
            };

            // Compile (or refresh) the physical plan of every task due this
            // iteration. The fingerprint is a coarse hash of live input
            // cardinalities, so plans survive ordinary delta ticks and only
            // rebuild when a relation changes magnitude.
            {
                let cards = cost::DbCardinalities {
                    total,
                    delta: Some(delta_base),
                    magic_floor: &self.magic_preds,
                };
                let mut corr = self.corrections.lock().expect("corrections mutex poisoned");
                for &(rule_idx, delta_literal) in &tasks {
                    let rule = &self.program.rules[rule_idx];
                    let key = (rule_idx, delta_literal);
                    let fresh = plan::fingerprint(rule, delta_literal, &cards);
                    let existing = plan_cache.get(&key);
                    if let Some(p) = existing {
                        if p.fingerprint == fresh {
                            // Fingerprint unchanged: only a sustained,
                            // large misestimate forces a rebuild (the
                            // adaptive feedback trigger).
                            let sustained = self.config.adaptive
                                && p.observed_error().is_some_and(|(err, execs)| {
                                    execs >= ADAPTIVE_MIN_EXECUTIONS
                                        && err >= ADAPTIVE_ERROR_THRESHOLD
                                });
                            if !sustained {
                                continue;
                            }
                            // Harvest this incarnation's learned factors
                            // so the rebuild estimates with them.
                            for (lit, c) in p.corrected_factors(&p.corrections) {
                                corr.insert((rule_idx, lit), c);
                            }
                            replans_triggered += 1;
                        }
                        replans += 1;
                    }
                    let rule_corrections: Vec<(usize, f64)> = if self.config.adaptive {
                        corr.range((rule_idx, 0)..=(rule_idx, usize::MAX))
                            .map(|(&(_, lit), &c)| (lit, c))
                            .collect()
                    } else {
                        Vec::new()
                    };
                    let compiled =
                        plan::build_plan(rule, delta_literal, &plan_cfg, &cards, &rule_corrections);
                    plans_built += 1;
                    if compiled.reordered {
                        reorders_applied += 1;
                    }
                    plan_cache.insert(key, compiled);
                }
            }

            // Evaluate every task against the iteration-start snapshot of
            // `total`. With several tasks the rule fan-out gets the worker
            // budget; a lone task hands it to the binding fan-out inside
            // its joins instead (no nested oversubscription either way).
            let pool_threads = if last_eval_wall >= PAR_MIN_EVAL_WALL {
                threads
            } else {
                1
            };
            let pool = (pool_threads > 1).then(|| self.worker_pool()).flatten();
            let inner_threads = if tasks.len() > 1 { 1 } else { pool_threads };
            type EvalOut = (Result<Vec<(eval::Bindings, IntervalSet)>>, Duration);
            let eval_out: Vec<EvalOut> = {
                let total_snapshot: &Database = total;
                let plan_cache = &plan_cache;
                fan_out(tasks.len(), pool_threads, pool, &mut stats.workers, |i| {
                    let (rule_idx, delta_literal) = tasks[i];
                    // One span per rule evaluation. When the rule fan-out
                    // dispatches to the pool this runs on a worker thread,
                    // so the span lands on that worker's own lane.
                    let mut rule_span = self.config.profiler.as_ref().map(|p| {
                        let rule = &self.program.rules[rule_idx];
                        let name = match &rule.label {
                            Some(l) => format!("rule {l}"),
                            None => format!("rule r{rule_idx}"),
                        };
                        let mut s = p.span(name);
                        if let Some(d) = delta_literal {
                            s.add("delta_literal", d as u64);
                        }
                        s
                    });
                    let ctx = EvalCtx {
                        total: total_snapshot,
                        delta: delta_literal.is_some().then_some(delta_base),
                        horizon,
                        index_joins: self.config.index_joins,
                        time_index: self.config.time_index,
                        threads: inner_threads,
                        // The binding fan-out only gets the pool when the
                        // rule fan-out is not using it (a lone task), so
                        // pool dispatch always comes from this thread.
                        pool: if inner_threads > 1 { pool } else { None },
                        counters: &counters,
                        profiler: self.config.profiler.as_ref(),
                    };
                    let rule_plan = plan_cache
                        .get(&(rule_idx, delta_literal))
                        .expect("plan compiled before dispatch");
                    let eval_start = Instant::now();
                    let r = execute_plan(&self.program.rules[rule_idx], rule_plan, &ctx);
                    if let (Some(s), Ok(rows)) = (rule_span.as_mut(), &r) {
                        s.add("derivations", rows.len() as u64);
                    }
                    (r, eval_start.elapsed())
                })
            };
            last_eval_wall = eval_out.iter().map(|(_, d)| *d).sum();

            // Merge every task's derivations back in fixed task order.
            for ((rule_idx, delta_literal), (results, eval_wall)) in
                tasks.iter().copied().zip(eval_out)
            {
                let rule = &self.program.rules[rule_idx];
                let merge_start = Instant::now();
                let results = results?;
                if let Some(p) = plan_cache.get(&(rule_idx, delta_literal)) {
                    planner_estimated_rows += p.est_total;
                    planner_actual_rows += results.len() as u64;
                }
                stats.rule_evaluations += 1;
                let rstats = &mut stats.rules[rule_idx];
                rstats.body_evaluations += 1;
                rstats.wall += eval_wall;
                if delta_literal.is_some() {
                    rstats.delta_tuples += delta_base.tuple_count();
                }
                rstats.derivations += results.len();
                for (binding, ivs) in results {
                    let tuple = ground_head(rule, &binding)?;
                    let mut out = ivs;
                    for op in &rule.head.ops {
                        out = apply_head_op(op, &out)?;
                    }
                    let out = out.intersect_interval(&horizon);
                    if out.is_empty() {
                        continue;
                    }
                    stats.rules[rule_idx].components_emitted += out.components().len();
                    let is_new = total
                        .relation(rule.head.atom.pred)
                        .and_then(|r| r.components_of(&tuple))
                        .is_none_or(|c| c.is_empty());
                    let added = total.merge(rule.head.atom.pred, &tuple, &out)?;
                    if !added.is_empty() {
                        grew = true;
                        let rstats = &mut stats.rules[rule_idx];
                        if is_new {
                            rstats.tuples_derived += 1;
                            stratum_tuples += 1;
                        }
                        rstats.components_added += added.components().len();
                        stratum_components += added.components().len();
                        next_delta.merge(rule.head.atom.pred, &tuple, &added)?;
                        if let Some(acc) = collected.as_deref_mut() {
                            acc.merge(rule.head.atom.pred, &tuple, &added)?;
                        }
                        if let Some(log) = provenance {
                            let b: Vec<(Symbol, Value)> =
                                binding.iter().map(|(k, v)| (*k, *v)).collect();
                            log.record(rule_idx, rule.head.atom.pred, tuple, added, b);
                        }
                    }
                }
                stats.rules[rule_idx].wall += merge_start.elapsed();
            }

            if let Some(s) = iter_span.as_mut() {
                s.add("delta_tuples", next_delta.tuple_count() as u64);
                s.add("grew", grew as u64);
            }
            if let Some(tracer) = &self.config.tracer {
                tracer.emit(
                    "iteration",
                    vec![
                        ("stratum", Json::from(stratum)),
                        ("iteration", Json::from(iteration)),
                        ("delta_tuples", Json::from(next_delta.tuple_count())),
                        ("grew", Json::from(grew)),
                    ],
                );
            }
            if !grew {
                break;
            }
            prev_delta = next_delta;
            iteration += 1;
        }

        // Fold the join-path counters into the run totals and mirror them
        // into the global metric registry (picked up by `--stats-json`).
        let index_probes = counters.index_probes.load(Ordering::Relaxed);
        let index_scan_avoided = counters.index_scan_avoided.load(Ordering::Relaxed);
        let full_scans = counters.full_scans.load(Ordering::Relaxed);
        let scanned_tuples = counters.scanned_tuples.load(Ordering::Relaxed);
        let probed_tuples = counters.probed_tuples.load(Ordering::Relaxed);
        let time_index_probes = counters.time_index_probes.load(Ordering::Relaxed);
        let interval_clips_avoided = counters.interval_clips_avoided.load(Ordering::Relaxed);
        stats.index_probes += index_probes;
        stats.index_scan_avoided += index_scan_avoided;
        stats.full_scans += full_scans;
        stats.scanned_tuples += scanned_tuples;
        stats.probed_tuples += probed_tuples;
        stats.time_index_probes += time_index_probes;
        stats.interval_clips_avoided += interval_clips_avoided;
        let registry = chronolog_obs::Registry::global();
        registry.counter("engine.index_probes").add(index_probes);
        registry
            .counter("engine.index_scan_avoided")
            .add(index_scan_avoided);
        registry.counter("engine.full_scans").add(full_scans);
        registry
            .counter("engine.scanned_tuples")
            .add(scanned_tuples);
        registry.counter("engine.probed_tuples").add(probed_tuples);
        registry
            .counter("engine.time_index_probes")
            .add(time_index_probes);
        registry
            .counter("engine.interval_clips_avoided")
            .add(interval_clips_avoided);

        // Planner counters, and the stratum's share of pool lifecycle
        // events (swapped out so a session advance only counts its own).
        stats.plans_built += plans_built;
        stats.replans += replans;
        stats.replans_triggered += replans_triggered;
        stats.reorders_applied += reorders_applied;
        stats.planner_estimated_rows += planner_estimated_rows;
        stats.planner_actual_rows += planner_actual_rows;
        registry.counter("engine.plans_built").add(plans_built);
        registry.counter("engine.replans").add(replans);
        registry
            .counter("engine.replans_triggered")
            .add(replans_triggered);
        registry
            .counter("engine.reorders_applied")
            .add(reorders_applied);
        if let Some(pool) = self.pool.get() {
            let respawns = pool.respawns.swap(0, Ordering::Relaxed);
            let reuses = pool.reuses.swap(0, Ordering::Relaxed);
            stats.pool_respawns += respawns;
            stats.pool_reuses += reuses;
            registry.counter("engine.pool_respawns").add(respawns);
            registry.counter("engine.pool_reuses").add(reuses);
        }
        // The final compiled plan of every variant this stratum executed,
        // replacing any explain recorded for the same variant by an
        // earlier stratum pass (sessions re-run strata; latest plan wins).
        for ((rule_idx, delta_literal), compiled) in &plan_cache {
            let label = &stats.rules[*rule_idx].label;
            let rendered =
                plan::explain(*rule_idx, label, &self.program.rules[*rule_idx], compiled);
            match stats
                .plan_explains
                .iter_mut()
                .find(|e| e.rule == *rule_idx && e.delta_literal == *delta_literal)
            {
                Some(slot) => *slot = rendered,
                None => stats.plan_explains.push(rendered),
            }
        }

        if let Some(s) = stratum_span.as_mut() {
            s.add("iterations", (iteration + 1) as u64);
            s.add("tuples_derived", stratum_tuples as u64);
            s.add("components_added", stratum_components as u64);
        }
        let wall = stratum_start.elapsed();
        stats.strata.push(StratumStats {
            stratum,
            iterations: iteration + 1,
            rule_evaluations: stats.rule_evaluations - evals_before,
            tuples_derived: stratum_tuples,
            components_added: stratum_components,
            wall,
        });
        stats.derived_components += stratum_components;
        if let Some(tracer) = &self.config.tracer {
            tracer.emit(
                "stratum",
                vec![
                    ("stratum", Json::from(stratum)),
                    ("iterations", Json::from(iteration + 1)),
                    ("tuples_derived", Json::from(stratum_tuples)),
                    ("components_added", Json::from(stratum_components)),
                    ("wall_us", Json::from(wall.as_micros() as u64)),
                ],
            );
        }
        Ok(iteration + 1)
    }
}

/// Deterministic task fan-out: runs `f` over `0..n` on up to `threads`
/// workers of the persistent pool and returns the results in task-index
/// order, regardless of how the dynamic work-stealing interleaved
/// execution. Worker busy time and task counts accumulate into `workers`
/// (indexed by worker slot; the sequential path attributes to worker 0).
fn fan_out<T: Send>(
    n: usize,
    threads: usize,
    pool: Option<&WorkerPool>,
    workers: &mut [WorkerStats],
    f: impl Fn(usize) -> T + Sync,
) -> Vec<T> {
    let threads = threads.clamp(1, n.max(1));
    let Some(pool) = pool.filter(|_| threads > 1 && n > 1) else {
        let start = Instant::now();
        let out: Vec<T> = (0..n).map(&f).collect();
        if let Some(w) = workers.first_mut() {
            w.tasks += n;
            w.busy += start.elapsed();
        }
        return out;
    };
    let run = pool.run(n, f);
    for (slot, tasks, busy) in run.workers {
        if let Some(ws) = workers.get_mut(slot) {
            ws.tasks += tasks;
            ws.busy += busy;
        }
    }
    run.results
}

/// A head operator spreads the derived validity:
/// `⊟ρ P` derived at `T` means `P` holds on `T ⊖ ρ` (towards the past);
/// `⊞ρ P` derived at `T` means `P` holds on `T ⊕ ρ` (towards the future).
fn apply_head_op(op: &HeadOp, ivs: &IntervalSet) -> Result<IntervalSet> {
    let out = match op {
        HeadOp::BoxMinus(rho) => ivs.checked_diamond_plus(rho),
        HeadOp::BoxPlus(rho) => ivs.checked_diamond_minus(rho),
    };
    out.map_err(Error::from)
}

/// Snapshots the relation-storage figures for one run: interner/symbol
/// table sizes (process-global), the result database's byte footprint, its
/// cumulative arena reuse counts, and the process-wide column-clone count.
pub(crate) fn capture_storage_stats(db: &Database, stats: &mut RunStats) {
    let (freed, reused) = db.arena_reuse_counts();
    stats.storage = StorageStats {
        mode: match db.mode() {
            crate::database::StorageMode::Columnar => "columnar".to_string(),
            crate::database::StorageMode::Row => "row".to_string(),
        },
        interned_symbols: Symbol::interned_count(),
        interned_values: crate::intern::interned_value_count(),
        interval_bytes: db.interval_arena_bytes(),
        value_bytes: db.storage_bytes().saturating_sub(db.interval_arena_bytes()),
        arena_slabs_freed: freed,
        arena_slabs_reused: reused,
        column_clones: crate::database::column_clone_count(),
    };
}

fn ground_head(rule: &Rule, binding: &eval::Bindings) -> Result<Tuple> {
    rule.head
        .atom
        .args
        .iter()
        .map(|t| match t {
            Term::Val(v) => Ok(*v),
            Term::Var(x) => binding.get(x).copied().ok_or_else(|| {
                Error::Eval(format!(
                    "unbound head variable {x} in rule `{}`",
                    rule.label.as_deref().unwrap_or("<unlabeled>")
                ))
            }),
        })
        .collect::<Result<Vec<_>>>()
        .map(Vec::into_boxed_slice)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse_facts, parse_program};

    fn run(rules: &str, facts: &str, horizon: (i64, i64)) -> Database {
        let program = parse_program(rules).unwrap();
        let mut db = Database::new();
        db.extend_facts(&parse_facts(facts).unwrap()).unwrap();
        let reasoner = Reasoner::new(
            program,
            ReasonerConfig::default().with_horizon(horizon.0, horizon.1),
        )
        .unwrap();
        reasoner.materialize(&db).unwrap().database
    }

    #[test]
    fn non_recursive_derivation() {
        let db = run(
            "h(A) :- p(A), q(A).",
            "p(x)@[0, 5].\nq(x)@[3, 9].",
            (0, 100),
        );
        assert!(db.holds_at("h", &[Value::sym("x")], 4));
        assert!(!db.holds_at("h", &[Value::sym("x")], 2));
    }

    #[test]
    fn temporal_recursion_propagates_to_horizon() {
        // The paper's rule 2 pattern: isOpen propagates forever until withdraw.
        let db = run(
            "isOpen(A) :- tranM(A, M).\n\
             isOpen(A) :- boxminus isOpen(A), not withdraw(A).",
            "tranM(acc, 20)@3.\nwithdraw(acc)@7.",
            (0, 20),
        );
        for t in 3..=6 {
            assert!(db.holds_at("isOpen", &[Value::sym("acc")], t), "t={t}");
        }
        // withdraw at 7 blocks the derivation at 7 itself and onwards.
        for t in 7..=20 {
            assert!(!db.holds_at("isOpen", &[Value::sym("acc")], t), "t={t}");
        }
        assert!(!db.holds_at("isOpen", &[Value::sym("acc")], 2));
    }

    #[test]
    fn stratified_negation_and_recursion_interact() {
        // margin propagation (paper rule 7): carry value unless changed.
        let db = run(
            "margin(A, M) :- tranM(A, M), not boxminus isOpen(A).\n\
             isOpen(A) :- tranM(A, M).\n\
             isOpen(A) :- boxminus isOpen(A), not withdraw(A).\n\
             changeM(A) :- tranM(A, M).\n\
             margin(A, M) :- diamondminus margin(A, M), not changeM(A).\n\
             margin(A, M) :- boxminus isOpen(A), diamondminus margin(A, X), tranM(A, Y), M = X + Y.",
            "tranM(acc, 97)@1.\ntranM(acc, 3)@5.",
            (0, 10),
        );
        assert!(db.holds_at("margin", &[Value::sym("acc"), Value::Int(97)], 1));
        assert!(db.holds_at("margin", &[Value::sym("acc"), Value::Int(97)], 4));
        assert!(db.holds_at("margin", &[Value::sym("acc"), Value::Int(100)], 5));
        assert!(db.holds_at("margin", &[Value::sym("acc"), Value::Int(100)], 10));
        assert!(!db.holds_at("margin", &[Value::sym("acc"), Value::Int(97)], 5));
    }

    #[test]
    fn head_box_operators_spread_validity() {
        let db = run(
            "boxplus[0, 3] alert(X) :- spike(X).",
            "spike(s)@10.",
            (0, 100),
        );
        for t in 10..=13 {
            assert!(db.holds_at("alert", &[Value::sym("s")], t), "t={t}");
        }
        assert!(!db.holds_at("alert", &[Value::sym("s")], 14));
        let db = run(
            "boxminus[1, 2] pre(X) :- spike(X).",
            "spike(s)@10.",
            (0, 100),
        );
        assert!(db.holds_at("pre", &[Value::sym("s")], 8));
        assert!(db.holds_at("pre", &[Value::sym("s")], 9));
        assert!(!db.holds_at("pre", &[Value::sym("s")], 10));
    }

    #[test]
    fn aggregates_feed_recursion() {
        // skew pattern: event sums feed a recursive accumulator.
        let db = run(
            "event(sum(S)) :- modPos(A, S).\n\
             skew(K) :- startSkew(K).\n\
             skew(K) :- diamondminus skew(K), not event(_).\n\
             skew(K) :- diamondminus skew(X), event(S), K = X + S.",
            "startSkew(0)@0.\nmodPos(a, 5)@2.\nmodPos(b, -2)@2.\nmodPos(a, 1)@4.",
            (0, 6),
        );
        assert!(db.holds_at("skew", &[Value::Int(0)], 1));
        assert!(db.holds_at("skew", &[Value::Int(3)], 2));
        assert!(db.holds_at("skew", &[Value::Int(3)], 3));
        assert!(db.holds_at("skew", &[Value::Int(4)], 4));
        assert!(db.holds_at("skew", &[Value::Int(4)], 6));
        assert!(!db.holds_at("skew", &[Value::Int(0)], 2));
    }

    #[test]
    fn unbounded_recursion_hits_iteration_budget() {
        let program = parse_program(
            "p(X) :- q(X).\n\
             p(X) :- boxminus p(X).",
        )
        .unwrap();
        let mut db = Database::new();
        db.extend_facts(&parse_facts("q(a)@0.").unwrap()).unwrap();
        let reasoner = Reasoner::new(
            program,
            ReasonerConfig {
                max_iterations: 50,
                ..ReasonerConfig::default()
            },
        )
        .unwrap();
        assert!(matches!(
            reasoner.materialize(&db),
            Err(Error::BudgetExceeded(_))
        ));
    }

    #[test]
    fn naive_and_seminaive_agree() {
        let rules = "isOpen(A) :- tranM(A, M).\n\
                     isOpen(A) :- boxminus isOpen(A), not withdraw(A).\n\
                     pair(A, B) :- isOpen(A), isOpen(B).";
        let facts = "tranM(x, 1)@0.\ntranM(y, 2)@3.\nwithdraw(x)@6.";
        let program = parse_program(rules).unwrap();
        let mut db = Database::new();
        db.extend_facts(&parse_facts(facts).unwrap()).unwrap();
        let mk = |semi| {
            Reasoner::new(
                program.clone(),
                ReasonerConfig {
                    semi_naive: semi,
                    ..ReasonerConfig::default().with_horizon(0, 12)
                },
            )
            .unwrap()
            .materialize(&db)
            .unwrap()
            .database
        };
        let a = mk(true);
        let b = mk(false);
        assert_eq!(a.to_facts_text(), b.to_facts_text());
    }

    #[test]
    fn stats_are_populated() {
        let program = parse_program("h(A) :- p(A).").unwrap();
        let mut db = Database::new();
        db.extend_facts(&parse_facts("p(x)@1.").unwrap()).unwrap();
        let m = Reasoner::new(program, ReasonerConfig::default())
            .unwrap()
            .materialize(&db)
            .unwrap();
        assert_eq!(m.stats.derived_tuples, 1);
        assert_eq!(m.stats.iterations.len(), 1);
        assert!(m.stats.rule_evaluations >= 1);
    }

    #[test]
    fn rigid_facts_combine_with_temporal_ones() {
        let db = run(
            "h(A, R) :- p(A), rate(R).",
            "p(x)@[2, 4].\nrate(0.5).",
            (0, 10),
        );
        assert!(db.holds_at("h", &[Value::sym("x"), Value::num(0.5)], 3));
        assert!(!db.holds_at("h", &[Value::sym("x"), Value::num(0.5)], 5));
    }
}
