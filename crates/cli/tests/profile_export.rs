//! Shape and validity of the `--profile` / `--profile-folded` exports.
//!
//! The Chrome trace must be loadable by Perfetto / `chrome://tracing`:
//! a `traceEvents` envelope of `"M"` thread-name metadata plus `"X"`
//! complete events carrying `ts`/`dur` in microseconds and a lane `tid`.
//! The folded export must be `lane;frame;... <self-us>` lines. Both are
//! also pushed through `chronolog validate-trace`, the same check CI runs.

use chronolog_cli::run_cli;
use chronolog_obs::Json;

fn args(list: &[&str]) -> Vec<String> {
    list.iter().map(|s| s.to_string()).collect()
}

/// Reads `main.dmtl` from memory and everything else from disk, so the
/// profile files written by one `run_cli` call can be validated by the
/// next.
fn fs_with_program(text: String) -> impl Fn(&str) -> std::io::Result<String> {
    move |p: &str| {
        if p == "main.dmtl" {
            Ok(text.clone())
        } else {
            std::fs::read_to_string(p)
        }
    }
}

const DEMO: &str = "isOpen(A) :- tranM(A, M).\n\
                    isOpen(A) :- boxminus isOpen(A), not withdraw(A).\n\
                    tranM(acc1, 20.0)@3.\n\
                    withdraw(acc1)@8.";

#[test]
fn chrome_trace_export_has_perfetto_shape() {
    let dir = std::env::temp_dir().join("chronolog-profile-shape-test");
    std::fs::create_dir_all(&dir).unwrap();
    let trace_path = dir.join("trace.json");
    let folded_path = dir.join("profile.folded");
    run_cli(
        &args(&[
            "run",
            "main.dmtl",
            "--horizon",
            "0..20",
            "--profile",
            trace_path.to_str().unwrap(),
            "--profile-folded",
            folded_path.to_str().unwrap(),
        ]),
        fs_with_program(DEMO.to_string()),
    )
    .unwrap();

    let trace = Json::parse(&std::fs::read_to_string(&trace_path).unwrap()).unwrap();
    assert_eq!(
        trace.get("displayTimeUnit").and_then(Json::as_str),
        Some("ms")
    );
    let events = trace.get("traceEvents").and_then(Json::as_array).unwrap();
    assert!(!events.is_empty(), "empty trace");
    let mut metas = 0usize;
    let mut completes = 0usize;
    for ev in events {
        let ph = ev.get("ph").and_then(Json::as_str).unwrap();
        assert_eq!(ev.get("pid").and_then(Json::as_u64), Some(1));
        assert!(ev.get("tid").and_then(Json::as_u64).is_some());
        match ph {
            "M" => {
                assert_eq!(
                    ev.get("name").and_then(Json::as_str),
                    Some("thread_name"),
                    "metadata event must name the thread"
                );
                assert!(ev
                    .get("args")
                    .and_then(|a| a.get("name"))
                    .and_then(Json::as_str)
                    .is_some());
                metas += 1;
            }
            "X" => {
                assert!(ev.get("name").and_then(Json::as_str).is_some());
                assert!(ev.get("ts").and_then(Json::as_u64).is_some());
                assert!(ev.get("dur").and_then(Json::as_u64).is_some());
                assert!(ev
                    .get("args")
                    .and_then(|a| a.get("depth"))
                    .and_then(Json::as_u64)
                    .is_some());
                completes += 1;
            }
            other => panic!("unexpected event phase {other}"),
        }
    }
    assert!(metas >= 1, "at least one lane must be named");
    assert!(completes >= 3, "expect materialize/stratum/rule spans");
    assert!(
        events
            .iter()
            .any(|ev| { ev.get("name").and_then(Json::as_str) == Some("materialize") }),
        "missing materialize span"
    );

    // The checked-in validator (what CI runs) must accept the file.
    let report = run_cli(
        &args(&["validate-trace", trace_path.to_str().unwrap()]),
        |p: &str| std::fs::read_to_string(p),
    )
    .unwrap();
    assert!(report.starts_with("ok:"), "{report}");

    // Folded lines: `lane;frame;... <self-us>`, flamegraph.pl's input.
    let folded = std::fs::read_to_string(&folded_path).unwrap();
    assert!(!folded.trim().is_empty(), "empty folded profile");
    for line in folded.lines() {
        let (stack, weight) = line
            .rsplit_once(' ')
            .unwrap_or_else(|| panic!("folded line without weight: {line}"));
        weight
            .parse::<u64>()
            .unwrap_or_else(|_| panic!("non-integer weight in: {line}"));
        assert!(stack.contains(';'), "stack must start with a lane: {line}");
    }
    assert!(
        folded.lines().any(|l| l.contains(";materialize")),
        "materialize frame missing from folded output:\n{folded}"
    );
}

#[test]
fn validate_trace_rejects_malformed_input() {
    let dir = std::env::temp_dir().join("chronolog-profile-reject-test");
    std::fs::create_dir_all(&dir).unwrap();
    let read = |p: &str| std::fs::read_to_string(p);

    let no_envelope = dir.join("no-envelope.json");
    std::fs::write(&no_envelope, "{\"events\": []}").unwrap();
    let err = run_cli(
        &args(&["validate-trace", no_envelope.to_str().unwrap()]),
        read,
    )
    .unwrap_err();
    assert!(err.message.contains("traceEvents"), "{}", err.message);

    let bad_depth = dir.join("bad-depth.json");
    std::fs::write(
        &bad_depth,
        "{\"traceEvents\": [\
           {\"ph\": \"X\", \"pid\": 1, \"tid\": 0, \"name\": \"s\", \
            \"ts\": 5, \"dur\": 1, \"args\": {\"depth\": 3}}]}",
    )
    .unwrap();
    let err = run_cli(
        &args(&["validate-trace", bad_depth.to_str().unwrap()]),
        read,
    )
    .unwrap_err();
    assert!(err.message.contains("no parent"), "{}", err.message);

    let escaping = dir.join("escaping.json");
    std::fs::write(
        &escaping,
        "{\"traceEvents\": [\
           {\"ph\": \"X\", \"pid\": 1, \"tid\": 0, \"name\": \"parent\", \
            \"ts\": 0, \"dur\": 10, \"args\": {\"depth\": 0}}, \
           {\"ph\": \"X\", \"pid\": 1, \"tid\": 0, \"name\": \"child\", \
            \"ts\": 0, \"dur\": 50, \"args\": {\"depth\": 1}}]}",
    )
    .unwrap();
    let err = run_cli(&args(&["validate-trace", escaping.to_str().unwrap()]), read).unwrap_err();
    assert!(err.message.contains("escapes"), "{}", err.message);
}

/// The join-heavy `corpus/netting.dmtl` program at `--threads 4` must
/// light up at least two worker lanes in the exported trace. The rule
/// fan-out is gated on a 2 ms iteration wall, so the exposure closure is
/// sized well past that; scheduling still decides which workers pull
/// tasks, hence the retry loop.
#[test]
fn threaded_profile_shows_multiple_worker_lanes() {
    let path = format!("{}/../../corpus/netting.dmtl", env!("CARGO_MANIFEST_DIR"));
    let scenario = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path}: {e}"));

    let dir = std::env::temp_dir().join("chronolog-profile-lanes-test");
    std::fs::create_dir_all(&dir).unwrap();
    let mut worker_lanes = 0usize;
    for attempt in 0..3 {
        let trace_path = dir.join(format!("trace-{attempt}.json"));
        run_cli(
            &args(&[
                "run",
                "main.dmtl",
                "--horizon",
                "0..20",
                "--threads",
                "4",
                "--profile",
                trace_path.to_str().unwrap(),
            ]),
            fs_with_program(scenario.clone()),
        )
        .unwrap();
        let trace = Json::parse(&std::fs::read_to_string(&trace_path).unwrap()).unwrap();
        let events = trace.get("traceEvents").and_then(Json::as_array).unwrap();
        let mut lane_names: std::collections::HashMap<u64, String> =
            std::collections::HashMap::new();
        for ev in events {
            if ev.get("ph").and_then(Json::as_str) == Some("M") {
                let tid = ev.get("tid").and_then(Json::as_u64).unwrap();
                let name = ev
                    .get("args")
                    .and_then(|a| a.get("name"))
                    .and_then(Json::as_str)
                    .unwrap();
                lane_names.insert(tid, name.to_string());
            }
        }
        let mut active: std::collections::BTreeSet<u64> = std::collections::BTreeSet::new();
        for ev in events {
            if ev.get("ph").and_then(Json::as_str) == Some("X") {
                active.insert(ev.get("tid").and_then(Json::as_u64).unwrap());
            }
        }
        worker_lanes = active
            .iter()
            .filter(|tid| {
                lane_names
                    .get(tid)
                    .is_some_and(|n| n.starts_with("worker-"))
            })
            .count();
        if worker_lanes >= 2 {
            break;
        }
    }
    assert!(
        worker_lanes >= 2,
        "expected spans on >=2 worker lanes after 3 attempts, saw {worker_lanes}"
    );
}
