//! `repro` — regenerates every table and figure of the paper's evaluation.
//!
//! ```text
//! repro --table fig3          # input-data table
//! repro --table fig4          # FRS comparison (Subgraph vs DatalogMTL)
//! repro --table fig5          # per-trade error statistics
//! repro --table perf          # §4.2 runtimes
//! repro --table fig1          # predicate dependency graph (DOT)
//! repro --table fig2          # market-metric formulas
//! repro --table ablations     # dense-vs-epoch and semi-naive ablations
//! repro --table all           # everything above (default; perf uses epochs)
//! repro --table perf --dense  # §4.2 on the dense (unix-seconds) timeline
//! repro --table export        # write the three interval ledgers to data/
//! repro --table perf --json out.json   # also write a machine-readable report
//! ```
//!
//! `--json FILE` (with `perf` or `all`) writes the per-interval engine
//! statistics as JSON, one report per materialization in the same shape as
//! the CLI's `--stats-json` (see docs/OBSERVABILITY.md).

use chronolog_bench::{paper_traces, render_table, sci};
use chronolog_cli::run_report;
use chronolog_core::{DependencyGraph, Reasoner, ReasonerConfig};
use chronolog_market::TraceStats;
use chronolog_obs::Json;
use chronolog_perp::harness::{run_datalog_with, validate, ErrorStats};
use chronolog_perp::program::{build_program, TimelineMode};
use chronolog_perp::MarketParams;
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut table = "all".to_string();
    let mut dense = false;
    let mut json_path: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--table" => {
                i += 1;
                table = args.get(i).cloned().unwrap_or_else(|| {
                    eprintln!("--table needs an argument");
                    std::process::exit(2);
                });
            }
            "--dense" => dense = true,
            "--json" => {
                i += 1;
                json_path = Some(args.get(i).cloned().unwrap_or_else(|| {
                    eprintln!("--json needs a file argument");
                    std::process::exit(2);
                }));
            }
            "--help" | "-h" => {
                println!("usage: repro [--table fig1|fig2|fig3|fig4|fig5|perf|ablations|all] [--dense] [--json FILE]");
                return;
            }
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
        i += 1;
    }

    match table.as_str() {
        "fig1" => fig1(),
        "fig2" => fig2(),
        "fig3" => fig3(),
        "fig4" => fig4(),
        "fig5" => fig5(),
        "perf" => perf(dense, json_path.as_deref()),
        "ablations" => ablations(),
        "export" => export(),
        "all" => {
            fig1();
            fig2();
            fig3();
            fig4();
            fig5();
            perf(dense, json_path.as_deref());
            ablations();
        }
        other => {
            eprintln!("unknown table: {other}");
            std::process::exit(2);
        }
    }
}

/// Writes the three synthetic interval traces as hash-chained JSON ledgers
/// under `data/` — the reproducible stand-ins for the Optimism traces.
fn export() {
    std::fs::create_dir_all("data").expect("create data/");
    for (config, trace) in paper_traces() {
        let ledger = chronolog_ledger::Ledger::from_trace(&trace).expect("valid trace");
        let path = format!("data/{}.json", config.name.replace([' ', '.'], "_"));
        chronolog_ledger::save_ledger(&ledger, std::path::Path::new(&path)).expect("write ledger");
        println!("wrote {path} ({} records)", ledger.len());
    }
}

/// Figure 1: the predicate dependency graph of the ETH-PERP program.
fn fig1() {
    println!("== Figure 1: dependency graph of the DatalogMTL program (DOT) ==\n");
    let program = build_program(&MarketParams::default(), TimelineMode::DenseSeconds)
        .expect("program builds");
    let graph = DependencyGraph::build(&program);
    println!("{}", graph.to_dot());
    let reasoner = Reasoner::new(program, ReasonerConfig::default().with_horizon(0, 1))
        .expect("program stratifies");
    println!(
        "predicates: {}, edges: {}, strata: {}\n",
        graph.predicates.len(),
        graph.edges.len(),
        reasoner.stratification().count()
    );
}

/// Figure 2: market metrics.
fn fig2() {
    println!("== Figure 2: market metrics (evaluated at p = 1200$, K = 1342.2) ==\n");
    let p = MarketParams::default();
    let price = 1200.0;
    let skew = 1342.2;
    let rows = vec![
        vec![
            "Max Funding Rate i_max".into(),
            format!("{}", p.max_funding_rate),
        ],
        vec![
            "Max Proportional Skew W_max".into(),
            format!(
                "{} / p_t = {}",
                p.skew_scale_notional,
                p.max_proportional_skew(price)
            ),
        ],
        vec![
            "Instantaneous Funding Rate i_t".into(),
            sci(p.instantaneous_funding_rate(skew, price)),
        ],
        vec![
            "Taker fee (skew-increasing)".into(),
            format!("{}", p.taker_fee),
        ],
        vec![
            "Maker fee (skew-reducing)".into(),
            format!("{}", p.maker_fee),
        ],
    ];
    println!("{}", render_table(&["Metric", "Value"], &rows));
}

/// Figure 3: the input-data table.
fn fig3() {
    println!("== Figure 3: input data (synthetic traces calibrated to the paper) ==\n");
    let rows: Vec<Vec<String>> = paper_traces()
        .iter()
        .map(|(config, trace)| {
            let s = TraceStats::of(trace);
            vec![
                config.name.clone(),
                s.events.to_string(),
                s.trades.to_string(),
                format!("{:.2}", s.initial_skew),
                s.accounts.to_string(),
                format!("{:.0}$", s.volume),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &[
                "Date / Interval (GMT)",
                "# events",
                "# trades",
                "Skew",
                "# accounts",
                "volume"
            ],
            &rows
        )
    );
    println!("(paper: 267/59/-2445.98, 108/16/1302.88, 128/29/2502.85)\n");
}

/// Figure 4: FRS comparison, Subgraph (fixed-point) vs DatalogMTL.
fn fig4() {
    println!("== Figure 4: funding rate sequence, Subgraph vs DatalogMTL ==\n");
    let params = MarketParams::default();
    for (config, trace) in paper_traces() {
        let report = validate(&trace, &params, TimelineMode::EventEpochs).expect("validation runs");
        println!("-- interval {} --", config.name);
        let shown = 8.min(report.frs_rows.len());
        let rows: Vec<Vec<String>> = report.frs_rows[..shown]
            .iter()
            .map(|r| {
                vec![
                    r.time.to_string(),
                    format!("{:.12}", r.subgraph),
                    format!("{:.12}", r.datalog),
                    sci(r.diff()),
                ]
            })
            .collect();
        println!(
            "{}",
            render_table(
                &["time", "Subgraph FRS", "DatalogMTL FRS", "Difference"],
                &rows
            )
        );
        println!(
            "({} more rows)   max |difference| over {} events: {}\n",
            report.frs_rows.len() - shown,
            report.frs_rows.len(),
            sci(report.max_frs_diff()),
        );
    }
    println!("(paper: differences in the order of 1e-12 — 'perfect accuracy')\n");
}

/// Figure 5: mean/std of per-trade errors, pooled across the intervals.
fn fig5() {
    println!("== Figure 5: per-trade error statistics (DatalogMTL - Subgraph) ==\n");
    let params = MarketParams::default();
    let mut returns = Vec::new();
    let mut fees = Vec::new();
    let mut fundings = Vec::new();
    for (_, trace) in paper_traces() {
        let report = validate(&trace, &params, TimelineMode::EventEpochs).expect("validation runs");
        for (a, b) in report.datalog.trades.iter().zip(&report.subgraph.trades) {
            returns.push(a.pnl - b.pnl);
            fees.push(a.fee - b.fee);
            fundings.push(a.funding - b.funding);
        }
    }
    let r = ErrorStats::of(&returns);
    let f = ErrorStats::of(&fees);
    let d = ErrorStats::of(&fundings);
    let rows = vec![
        vec!["Mean".into(), sci(r.mean), sci(f.mean), sci(d.mean)],
        vec![
            "Std. Dev.".into(),
            sci(r.std_dev),
            sci(f.std_dev),
            sci(d.std_dev),
        ],
        vec![
            "Max |err|".into(),
            sci(r.max_abs),
            sci(f.max_abs),
            sci(d.max_abs),
        ],
        vec![
            "# trades".into(),
            r.count.to_string(),
            f.count.to_string(),
            d.count.to_string(),
        ],
    ];
    println!(
        "{}",
        render_table(&["", "Returns", "Fee", "Funding"], &rows)
    );
    println!("(paper: means ~1e-15..1e-17, std devs ~1e-14..1e-16)\n");
}

/// §4.2 performance: runtime per interval. The dense (unix-seconds)
/// timeline is the apples-to-apples comparison with the Vadalog numbers;
/// the event-epoch timeline shows what the compressed encoding buys.
/// With `json_path`, also writes a machine-readable report: one entry per
/// materialization in the CLI's `--stats-json` shape.
fn perf(dense_only: bool, json_path: Option<&str>) {
    println!("== §4.2 performance: DatalogMTL materialization runtime ==\n");
    let params = MarketParams::default();
    let paper_runtimes = [1140.0, 540.0, 420.0];
    let mut rows = Vec::new();
    let mut reports = Vec::new();
    let mut add_report =
        |stats: &chronolog_core::RunStats, name: &str, timeline: &str, secs: f64| {
            let mut rep = run_report(stats, &[name.to_string()], None);
            rep.set("command", "repro");
            rep.set("timeline", timeline);
            rep.set("runtime_secs", secs);
            reports.push(rep);
        };
    for ((config, trace), paper_secs) in paper_traces().into_iter().zip(paper_runtimes) {
        let t0 = Instant::now();
        let dense_run = run_datalog_with(&trace, &params, TimelineMode::DenseSeconds, true)
            .expect("dense run succeeds");
        let dense_t = t0.elapsed().as_secs_f64();
        add_report(&dense_run.stats, &config.name, "dense_seconds", dense_t);
        let epoch_t = if dense_only {
            None
        } else {
            let t0 = Instant::now();
            let epoch_run = run_datalog_with(&trace, &params, TimelineMode::EventEpochs, true)
                .expect("epoch run succeeds");
            let secs = t0.elapsed().as_secs_f64();
            add_report(&epoch_run.stats, &config.name, "event_epochs", secs);
            Some(secs)
        };
        rows.push(vec![
            config.name.clone(),
            trace.event_count().to_string(),
            format!("{dense_t:.2}s"),
            epoch_t.map_or("-".to_string(), |t| format!("{t:.2}s")),
            format!("{paper_secs:.0}s"),
            format!("{:.0}s", trace.span_secs()),
            (if dense_t < trace.span_secs() as f64 {
                "yes"
            } else {
                "NO"
            })
            .to_string(),
            dense_run.stats.derived_tuples.to_string(),
        ]);
    }
    println!(
        "{}",
        render_table(
            &[
                "interval",
                "# events",
                "dense (ours)",
                "epochs (ours)",
                "Vadalog",
                "window",
                "realtime?",
                "derived tuples"
            ],
            &rows
        )
    );
    println!("(shape check: runtime << 7200s window in all intervals, as in the paper)\n");
    if let Some(path) = json_path {
        let mut doc = Json::object();
        doc.set("schema_version", chronolog_cli::REPORT_SCHEMA_VERSION);
        doc.set("command", "repro");
        doc.set("table", "perf");
        doc.set("runs", Json::Arr(reports));
        std::fs::write(path, doc.to_pretty()).expect("write --json report");
        println!("wrote machine-readable perf report to {path}\n");
    }
}

/// Ablations: timeline granularity and semi-naive evaluation.
fn ablations() {
    println!("== Ablations ==\n");
    let params = MarketParams::default();
    let (config, trace) = &paper_traces()[1]; // the 108-event interval

    // A: dense vs epoch timeline (identical outputs, different cost).
    let t0 = Instant::now();
    let dense = run_datalog_with(trace, &params, TimelineMode::DenseSeconds, true).unwrap();
    let dense_t = t0.elapsed().as_secs_f64();
    let t0 = Instant::now();
    let epoch = run_datalog_with(trace, &params, TimelineMode::EventEpochs, true).unwrap();
    let epoch_t = t0.elapsed().as_secs_f64();
    assert_eq!(dense.run.frs, epoch.run.frs, "timelines must agree exactly");
    assert_eq!(dense.run.trades, epoch.run.trades);
    println!(
        "-- A: timeline granularity (interval {}, outputs identical) --",
        config.name
    );
    println!(
        "{}",
        render_table(
            &[
                "timeline",
                "runtime",
                "derived tuples",
                "iterations (max stratum)"
            ],
            &[
                vec![
                    "dense seconds".into(),
                    format!("{dense_t:.3}s"),
                    dense.stats.derived_tuples.to_string(),
                    dense.stats.iterations.iter().max().unwrap().to_string(),
                ],
                vec![
                    "event epochs".into(),
                    format!("{epoch_t:.3}s"),
                    epoch.stats.derived_tuples.to_string(),
                    epoch.stats.iterations.iter().max().unwrap().to_string(),
                ],
            ]
        )
    );

    // B: semi-naive vs naive fixpoint (epoch timeline).
    let t0 = Instant::now();
    let semi = run_datalog_with(trace, &params, TimelineMode::EventEpochs, true).unwrap();
    let semi_t = t0.elapsed().as_secs_f64();
    let t0 = Instant::now();
    let naive = run_datalog_with(trace, &params, TimelineMode::EventEpochs, false).unwrap();
    let naive_t = t0.elapsed().as_secs_f64();
    assert_eq!(semi.run.frs, naive.run.frs, "fixpoint modes must agree");
    println!("-- B: fixpoint strategy (event epochs, outputs identical) --");
    println!(
        "{}",
        render_table(
            &["strategy", "runtime", "rule evaluations"],
            &[
                vec![
                    "semi-naive".into(),
                    format!("{semi_t:.3}s"),
                    semi.stats.rule_evaluations.to_string(),
                ],
                vec![
                    "naive (full re-eval)".into(),
                    format!("{naive_t:.3}s"),
                    naive.stats.rule_evaluations.to_string(),
                ],
            ]
        )
    );
}
