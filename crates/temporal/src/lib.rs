//! # mtl-temporal
//!
//! The timeline substrate for the `chronolog` DatalogMTL engine: exact
//! rational time points, intervals over ℚ ∪ {±∞} with independently
//! open/closed endpoints, and fully-coalesced interval sets with the
//! Metric Temporal Logic operator transforms
//! (`◇⁻ρ`, `⊟ρ`, `◇⁺ρ`, `⊞ρ`, `S_ρ`, `U_ρ`).
//!
//! This crate is deliberately free of any Datalog notions — it is pure
//! interval algebra, reusable by any temporal reasoner.
//!
//! ## Quick tour
//!
//! ```
//! use mtl_temporal::{Interval, IntervalSet, MetricInterval, Rational};
//!
//! // A fact holding on [0,10] and again on [20,30].
//! let holds = IntervalSet::from_intervals([
//!     Interval::closed_int(0, 10),
//!     Interval::closed_int(20, 30),
//! ]);
//!
//! // ◇⁻[1,2]: "held at some point between 1 and 2 time units ago".
//! let dm = holds.diamond_minus(&MetricInterval::closed_int(1, 2));
//! assert!(dm.contains(Rational::integer(12)));
//!
//! // ⊟[0,5]: "held continuously over the last 5 units".
//! let bm = holds.box_minus(&MetricInterval::closed_int(0, 5));
//! assert!(bm.contains(Rational::integer(10)));
//! assert!(!bm.contains(Rational::integer(21)));
//! ```

#![warn(missing_docs)]

mod interval;
mod rational;
mod set;

pub use interval::{Interval, MetricInterval, TimeBound, TimeOverflow};
pub use rational::{ParseRationalError, Rational};
pub use set::IntervalSet;
